package experiments

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// RunPIOvsUDMA reproduces the Section 9 comparison with memory-mapped
// FIFO network interfaces: "This approach results in good latency for
// short messages. However, for longer messages the DMA-based controller
// is preferable because it makes use of the bus burst mode, which is
// much faster than processor-generated single word transactions."
// We sweep message size over both paths on the same NIC and locate the
// crossover.
func RunPIOvsUDMA() (*Result, error) {
	res := &Result{
		ID:    "e5",
		Title: "Memory-mapped FIFO (PIO) vs UDMA",
		Paper: "FIFO wins short-message latency; DMA burst wins bandwidth; crossover in between",
	}

	sizes := []int{16, 64, 128, 256, 512, 1024, 4096}
	pioSeries := &stats.Series{Name: "PIO FIFO latency", XLabel: "message size (bytes)", YLabel: "µs"}
	udmaSeries := &stats.Series{Name: "UDMA latency", XLabel: "message size (bytes)", YLabel: "µs"}
	tbl := stats.NewTable("One-way end-to-end latency (send start → data in remote memory)",
		"size", "PIO µs", "UDMA µs", "winner")

	var crossover int = -1
	for _, size := range sizes {
		pioUS, err := nicLatency(size, true)
		if err != nil {
			return nil, fmt.Errorf("pio %d: %w", size, err)
		}
		udmaUS, err := nicLatency(size, false)
		if err != nil {
			return nil, fmt.Errorf("udma %d: %w", size, err)
		}
		pioSeries.Add(float64(size), pioUS)
		udmaSeries.Add(float64(size), udmaUS)
		winner := "PIO"
		if udmaUS < pioUS {
			winner = "UDMA"
			if crossover < 0 {
				crossover = size
			}
		}
		tbl.AddRow(stats.Bytes(size), fmt.Sprintf("%.1f", pioUS),
			fmt.Sprintf("%.1f", udmaUS), winner)
	}
	res.Series = append(res.Series, pioSeries, udmaSeries)
	res.Tables = append(res.Tables, tbl)

	pioSmall, _ := pioSeries.Y(16)
	udmaSmall, _ := udmaSeries.Y(16)
	pioBig, _ := pioSeries.Y(4096)
	udmaBig, _ := udmaSeries.Y(4096)
	res.check("PIO wins at 16 B", pioSmall < udmaSmall,
		"PIO %.1f µs vs UDMA %.1f µs", pioSmall, udmaSmall)
	res.check("UDMA wins at 4 KB", udmaBig < pioBig,
		"UDMA %.1f µs vs PIO %.1f µs", udmaBig, pioBig)
	res.check("crossover exists between 16 B and 4 KB", crossover > 16 && crossover <= 4096,
		"crossover at %d bytes", crossover)
	res.Notes = append(res.Notes,
		"PIO words cost 1 µs each on EISA (4 MB/s); the burst engine streams at 33 MB/s but pays per-transfer startup")
	return res, nil
}

// nicLatency measures the one-way latency of a single message: sender
// starts at a known time; the receive-side NIC records its DMA
// completion time. Cross-node clock skew is avoided by warming the
// path and reading both clocks after a full drain.
func nicLatency(size int, pio bool) (float64, error) {
	c := cluster.New(cluster.Config{
		Nodes:   2,
		Machine: machine.Config{RAMFrames: 64},
		NIC:     nic.Config{NIPTPages: 16, PIOWindow: true},
		Window:  500, // tight lockstep for latency accuracy
	})
	defer c.Shutdown()
	costs := c.Nodes[0].Costs

	if err := udmalib.MapSendWindow(c.NICs[0], 0, 1, []uint32{40}); err != nil {
		return 0, err
	}

	var sendStart sim.Cycles
	err := runOn(c.Nodes[0], "sender", func(p *kernel.Proc) error {
		d, err := udmalib.Open(p, c.NICs[0], true)
		if err != nil {
			return err
		}
		va, err := p.Alloc(4096)
		if err != nil {
			return err
		}
		payload := workload.Payload(size, 5)
		if err := p.WriteBuf(va, payload); err != nil {
			return err
		}
		pioBase := d.Base() + addr.VAddr(uint32(c.NICs[0].NIPTSize())<<addr.PageShift)

		send := func() error {
			if pio {
				// The FIFO protocol: destination word, data words, launch.
				if err := p.Store(pioBase+nic.PIORegDest, udmalib.WindowOff(0, 0)); err != nil {
					return err
				}
				data, err := p.ReadBuf(va, size)
				if err != nil {
					return err
				}
				for i := 0; i+4 <= len(data); i += 4 {
					w := uint32(data[i]) | uint32(data[i+1])<<8 |
						uint32(data[i+2])<<16 | uint32(data[i+3])<<24
					if err := p.Store(pioBase+nic.PIORegData, w); err != nil {
						return err
					}
				}
				return p.Store(pioBase+nic.PIORegLaunch, 0)
			}
			return d.SendAsync(va, udmalib.WindowOff(0, 0), size)
		}
		// Warm mappings (fault costs out of the measured path), then a
		// settle so warm-up traffic fully drains.
		if err := send(); err != nil {
			return err
		}
		p.Sleep(200_000)
		sendStart = p.Now()
		return send()
	})
	if err != nil {
		return 0, err
	}
	// Both sides finish in hardware after the sender process exits: the
	// cluster's merged drain flushes the backplane mailboxes and fires
	// the sender's in-flight DMA (whose completion launches the packet),
	// the receiver's arrival and its receive-DMA events, all in global
	// time order.
	c.DrainHardware()
	st := c.NICs[1].Stats()
	if st.PacketsReceived < 2 {
		return 0, fmt.Errorf("only %d packets received", st.PacketsReceived)
	}
	if st.LastRecvAt < sendStart {
		return 0, fmt.Errorf("receive completed before send started (clock skew %d vs %d)",
			st.LastRecvAt, sendStart)
	}
	return costs.Micros(st.LastRecvAt - sendStart), nil
}
