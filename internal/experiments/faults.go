package experiments

import (
	"errors"
	"fmt"

	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/sweep"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// FaultSeed is the default RNG seed for the fault-injection sweep; the
// shrimpsim scenario overrides it from the command line.
const FaultSeed = 0x5eed_fa17

// faultTrial is one point of the fault-injection sweep: messages sent
// through SendRetry against a device that rejects initiations and fails
// completions at the given per-transfer probability.
type faultTrial struct {
	Rate      float64
	Messages  int
	Delivered int
	Exhausted int

	Rejected uint64 // device-injected validation rejections
	Failed   uint64 // device-injected completion failures
	Retries  uint64 // library resend attempts beyond the first
	Backoffs uint64 // backoff waits between attempts

	EngineFailures uint64 // failed completions the engine counted
	CtrlFailures   uint64 // accepted-then-failed transfers (controller)

	Elapsed sim.Cycles
	// RecoveryCycles sums, over messages that needed at least one
	// resend but were delivered, the time beyond a clean send.
	RecoveryCycles sim.Cycles
	Recovered      int

	Costs *sim.CostModel
}

func (t *faultTrial) goodput() float64 {
	return mbps(t.Costs, t.Delivered*faultMsgBytes, t.Elapsed)
}

const (
	faultMsgBytes = 4096
	faultMsgCount = 48
)

// runFaultTrial sends faultMsgCount one-page messages through a faulty
// device injecting rejections and completion failures at probability
// rate each, recovering with udmalib.SendRetry. cleanSend is the
// per-message time measured at rate zero (pass 0 when measuring it).
func runFaultTrial(rate float64, seed uint64, cleanSend sim.Cycles) (*faultTrial, error) {
	n := machine.New(0, machine.Config{
		RAMFrames: 96,
		UDMA:      core.Config{QueueDepth: 4},
	})
	inner := device.NewBuffer("buf", 8, 4, 0)
	faulty := device.NewFaulty(inner)
	faulty.InjectRates(sim.NewRNG(seed), rate, rate)
	n.AttachDevice(faulty, 0)
	defer n.Kernel.Shutdown()

	t := &faultTrial{Rate: rate, Messages: faultMsgCount, Costs: n.Costs}
	err := runOn(n, "sender", func(p *kernel.Proc) error {
		d, err := udmalib.Open(p, faulty, true)
		if err != nil {
			return err
		}
		va, err := p.Alloc(faultMsgBytes)
		if err != nil {
			return err
		}
		if err := p.WriteBuf(va, workload.Payload(faultMsgBytes, 3)); err != nil {
			return err
		}
		pol := udmalib.DefaultRetryPolicy()
		start := p.Now()
		for i := 0; i < faultMsgCount; i++ {
			before := d.Stats()
			sendStart := p.Now()
			err := d.SendRetry(va, 0, faultMsgBytes, pol)
			switch {
			case err == nil:
				t.Delivered++
				if d.Stats().Failures > before.Failures {
					// Delivered despite at least one failed attempt:
					// the extra time is the recovery cost.
					t.Recovered++
					if extra := p.Now() - sendStart - cleanSend; extra > 0 {
						t.RecoveryCycles += extra
					}
				}
			case errors.As(err, new(*udmalib.RetryExhaustedError)):
				t.Exhausted++
			default:
				return err
			}
		}
		t.Elapsed = p.Now() - start
		st := d.Stats()
		t.Retries, t.Backoffs = st.Retries, st.Backoffs
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.Rejected, t.Failed = faulty.Injected()
	t.EngineFailures, _ = n.Engine.FailStats()
	t.CtrlFailures = n.UDMA.Stats().Failures
	return t, nil
}

// faultFingerprint condenses a trial into the tuple two same-seed runs
// must reproduce exactly.
func faultFingerprint(t *faultTrial) string {
	return fmt.Sprintf("d=%d x=%d rej=%d fail=%d bk=%d el=%d rec=%d",
		t.Delivered, t.Exhausted, t.Rejected, t.Failed, t.Backoffs, t.Elapsed, t.RecoveryCycles)
}

// RunFaultInjection is E12: graceful recovery from injected hardware
// faults. The paper's termination discussion anticipates "memory system
// errors that the DMA hardware cannot handle transparently"; this
// experiment injects initiation rejections and completion-time failures
// at a swept per-transfer probability and measures what the recovery
// machinery (status-word error bits, the library's bounded
// retry-with-backoff) preserves: every fault is either recovered or
// reported, goodput degrades but survives, and the whole run — faults
// included — is deterministic under a fixed seed.
func RunFaultInjection() (*Result, error) {
	return RunFaultInjectionSeeded(FaultSeed)
}

// RunFaultInjectionSeeded is RunFaultInjection under a caller-chosen
// seed (the shrimpsim faults scenario takes it from the command line).
func RunFaultInjectionSeeded(seed uint64) (*Result, error) {
	res := &Result{
		ID:    "e12",
		Title: "Fault injection: per-transfer error recovery",
		Paper: "termination for 'memory system errors that the DMA hardware cannot handle transparently' (Section 6)",
	}

	clean, err := runFaultTrial(0, seed, 0)
	if err != nil {
		return nil, fmt.Errorf("clean run: %w", err)
	}
	cleanSend := clean.Elapsed / sim.Cycles(clean.Messages)

	rates := []float64{0, 0.01, 0.05, 0.1, 0.2}
	tbl := stats.NewTable("Recovery under injected faults (48 × 4 KB messages)",
		"fault rate", "delivered", "given up", "injected rej/fail",
		"backoffs", "goodput MB/s", "mean recovery µs")
	// One independent single-node machine per rate: fan the sweep out
	// across workers, keep the table in rate order.
	type trialOut struct {
		t   *faultTrial
		err error
	}
	outs := sweep.Run(len(rates), sweepWorkers, func(i int) trialOut {
		t, err := runFaultTrial(rates[i], seed, cleanSend)
		return trialOut{t, err}
	})
	var trials []*faultTrial
	for i, out := range outs {
		if out.err != nil {
			return nil, fmt.Errorf("rate %.2f: %w", rates[i], out.err)
		}
		t := out.t
		trials = append(trials, t)
		recovery := "-"
		if t.Recovered > 0 {
			recovery = fmt.Sprintf("%.1f", t.Costs.Micros(t.RecoveryCycles)/float64(t.Recovered))
		}
		tbl.AddRow(fmt.Sprintf("%.2f", rates[i]),
			fmt.Sprintf("%d/%d", t.Delivered, t.Messages),
			fmt.Sprintf("%d", t.Exhausted),
			fmt.Sprintf("%d/%d", t.Rejected, t.Failed),
			fmt.Sprintf("%d", t.Backoffs),
			fmt.Sprintf("%.1f", t.goodput()),
			recovery)
	}
	res.Tables = append(res.Tables, tbl)

	series := &stats.Series{Name: "goodput vs fault rate", XLabel: "per-transfer fault probability", YLabel: "MB/s"}
	for _, t := range trials {
		series.Add(t.Rate, t.goodput())
	}
	res.Series = append(res.Series, series)

	zero, worst := trials[0], trials[len(trials)-1]
	res.check("zero rate injects nothing and delivers everything",
		zero.Rejected == 0 && zero.Failed == 0 && zero.Delivered == zero.Messages,
		"rej=%d fail=%d delivered=%d/%d", zero.Rejected, zero.Failed, zero.Delivered, zero.Messages)
	var faulted, accounted bool
	for _, t := range trials[1:] {
		if t.Rejected+t.Failed > 0 {
			faulted = true
		}
		if t.Delivered+t.Exhausted == t.Messages {
			accounted = true
		} else {
			accounted = false
			break
		}
	}
	res.check("faults actually fired at nonzero rates", faulted, "")
	res.check("every message delivered or reported (no hangs, no panics)", accounted,
		"worst rate: %d delivered + %d given up of %d", worst.Delivered, worst.Exhausted, worst.Messages)
	res.check("goodput degrades under faults but survives",
		worst.goodput() < zero.goodput() && worst.goodput() > 0,
		"%.1f MB/s at rate %.2f vs %.1f MB/s clean", worst.goodput(), worst.Rate, zero.goodput())
	res.check("recovery observed (failed attempts later delivered)",
		worst.Recovered > 0, "%d messages recovered at rate %.2f", worst.Recovered, worst.Rate)

	// Determinism: the sweep's fault pattern is a pure function of the
	// seed, so a re-run must reproduce the worst-rate trial bit-exactly.
	again, err := runFaultTrial(worst.Rate, seed, cleanSend)
	if err != nil {
		return nil, err
	}
	fp1, fp2 := faultFingerprint(worst), faultFingerprint(again)
	res.check("same seed reproduces the run exactly", fp1 == fp2, "%s vs %s", fp1, fp2)
	res.metric("clean_goodput_mbps", zero.goodput())
	res.metric("worst_rate_goodput_mbps", worst.goodput())
	res.metric("worst_rate_delivered", float64(worst.Delivered))
	res.metric("worst_rate_recovered", float64(worst.Recovered))
	res.Notes = append(res.Notes,
		fmt.Sprintf("seed %#x; retry policy: %d attempts, backoff 256 cycles doubling", seed, udmalib.DefaultRetryPolicy().MaxAttempts))
	return res, nil
}
