package experiments

import (
	"fmt"
	"strings"

	"shrimp/internal/interconnect"
	"shrimp/internal/loadgen"
	"shrimp/internal/machine"
	"shrimp/internal/stats"
	"shrimp/internal/sweep"
)

// ServeSeed is the default seed for the open-loop serving sweep;
// shrimpsim's serve scenario overrides it from the command line.
const ServeSeed = 0x5e_21_7e

// serveRates is the offered-rate sweep in messages per million cycles.
// Calibrated against the 4-node shape's measured capacity (~290
// msgs/Mcycle): the first two points stay under the knee, the last two
// sit well past it so the saturation detector has something to find.
var serveRates = []float64{75, 150, 450, 1350}

const (
	serveMessages = 400
	serveFlows    = 1024
	serveNodes    = 4
)

// serveRegime is one machine condition the rate sweep runs under.
type serveRegime struct {
	name string
	cfg  func(tc *loadgen.TrialConfig)
}

func serveRegimes(seed uint64) []serveRegime {
	return []serveRegime{
		{"clean", func(tc *loadgen.TrialConfig) {}},
		{"lossy", func(tc *loadgen.TrialConfig) {
			tc.Fault = interconnect.FaultPlan{
				Seed: seed ^ 0x10_55, DropRate: 0.05, DupRate: 0.02,
				CorruptRate: 0.02, DelayRate: 0.05,
			}
		}},
		{"faulty", func(tc *loadgen.TrialConfig) {
			tc.FaultInject = true
			tc.FaultRejectRate = 0.02
			tc.FaultFailRate = 0.02
		}},
	}
}

func serveTrial(seed uint64, reg serveRegime, rate float64, workers int) (*loadgen.Result, error) {
	tc := loadgen.TrialConfig{
		Config: loadgen.Config{
			Nodes:    serveNodes,
			Seed:     seed,
			Rate:     rate,
			Messages: serveMessages,
			Flows:    serveFlows,
		},
		Workers: workers,
	}
	reg.cfg(&tc)
	res, err := loadgen.RunTrial(tc)
	if err != nil {
		return nil, fmt.Errorf("%s rate %.0f: %w", reg.name, rate, err)
	}
	return res, nil
}

// metricKey flattens a class name ("small-pio") into metric-key form.
func metricKey(parts ...string) string {
	return strings.ReplaceAll(strings.Join(parts, "_"), "-", "_")
}

// RunServe is E15: the open-loop serving sweep. Every experiment so far
// is closed-loop — the workload waits for the machine. Here
// internal/loadgen offers a seeded Poisson arrival schedule at rates
// from well under to well past the measured capacity, under three
// regimes (clean wire, 5%-drop lossy wire with reliable delivery,
// 2%-fault device injection), and reads back serving SLOs: offered vs
// achieved rate, goodput, and per-class p50/p99/p999 sojourn latency
// where queueing behind a saturated NIC is charged to the message.
func RunServe() (*Result, error) {
	return RunServeSeeded(ServeSeed)
}

// RunServeSeeded is RunServe under a caller-chosen seed.
func RunServeSeeded(seed uint64) (*Result, error) {
	res := &Result{
		ID:    "e15",
		Title: "Extension: open-loop serving — offered-rate sweep and SLO readout",
		Paper: "the paper benchmarks closed-loop; serving sustained traffic is the north-star extension",
	}
	costs := machine.SHRIMP1996()
	us := func(cycles float64) float64 { return costs.Micros(1) * cycles }

	regimes := serveRegimes(seed)
	type cell struct {
		res *loadgen.Result
		err error
	}
	// regime-major, rate-minor flat fan-out: every trial builds its own
	// cluster, so the sweep parallelizes freely and results return in
	// input order, keeping tables byte-identical at any worker count.
	outs := sweep.Run(len(regimes)*len(serveRates), sweepWorkers, func(i int) cell {
		r, err := serveTrial(seed, regimes[i/len(serveRates)], serveRates[i%len(serveRates)], 1)
		return cell{r, err}
	})
	byRegime := make(map[string][]*loadgen.Result)
	for i, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		byRegime[regimes[i/len(serveRates)].name] = append(byRegime[regimes[i/len(serveRates)].name], out.res)
	}

	accounted, ordered, tails := true, true, true
	achievedSeries := map[string]*stats.Series{}
	for _, reg := range regimes {
		tbl := stats.NewTable(
			fmt.Sprintf("Open-loop serving, %s regime (%d msgs, %d flows, %d nodes; latency = sojourn µs)",
				reg.name, serveMessages, serveFlows, serveNodes),
			"rate msg/Mc", "achieved", "goodput B/Mc", "failed", "max depth", "rtx",
			"small p50/p99/p999", "mid p50/p99/p999", "large p50/p99/p999")
		ser := &stats.Series{Name: "achieved vs offered rate (" + reg.name + ")",
			XLabel: "offered msgs/Mcycle", YLabel: "achieved msgs/Mcycle"}
		achievedSeries[reg.name] = ser
		for _, r := range byRegime[reg.name] {
			if r.Delivered+r.Failed != r.Messages {
				accounted = false
			}
			if r.OrderViolations != 0 {
				ordered = false
			}
			row := []string{
				fmt.Sprintf("%.0f", r.OfferedRate),
				fmt.Sprintf("%.0f", r.AchievedRate),
				fmt.Sprintf("%.0f", r.Goodput()),
				fmt.Sprintf("%d", r.Failed),
				fmt.Sprintf("%d", r.MaxQueueDepth),
				fmt.Sprintf("%d", r.Retransmits),
			}
			for c := range r.Classes {
				s := &r.Classes[c]
				if s.Delivered > 0 && !(s.P50 <= s.P99 && s.P99 <= s.P999) {
					tails = false
				}
				row = append(row, fmt.Sprintf("%.0f/%.0f/%.0f", us(s.P50), us(s.P99), us(s.P999)))
			}
			tbl.AddRow(row...)
			ser.Add(r.OfferedRate, r.AchievedRate)
		}
		res.Tables = append(res.Tables, tbl)
		res.Series = append(res.Series, ser)
	}

	res.check("every message delivered or failed typed, in every regime and at every rate", accounted, "")
	res.check("per-flow FIFO order held everywhere (0 violations)", ordered, "")
	res.check("sojourn percentiles ordered p50 <= p99 <= p999 for every served class", tails, "")

	for _, reg := range regimes {
		trials := byRegime[reg.name]
		low, top := trials[0], trials[len(trials)-1]
		res.check(reg.name+": system keeps up below the knee",
			low.AchievedRate >= 0.9*low.OfferedRate,
			"achieved %.1f of offered %.1f msgs/Mcycle", low.AchievedRate, low.OfferedRate)

		var pts []loadgen.RatePoint
		for _, r := range trials {
			pts = append(pts, loadgen.RatePoint{Offered: r.OfferedRate, Achieved: r.AchievedRate})
		}
		knee, found := loadgen.Knee(pts, 0.9)
		res.check(reg.name+": the sweep reaches the saturation knee", found,
			"first backlogged offered rate %.0f msgs/Mcycle", knee)
		res.metric(metricKey(reg.name, "knee_rate"), knee)
		res.metric(metricKey(reg.name, "goodput_sat_bpmc"), top.Goodput())
		res.metric(metricKey(reg.name, "max_queue_depth"), float64(top.MaxQueueDepth))
		for c := range low.Classes {
			s := &low.Classes[c]
			res.metric(metricKey(reg.name, s.Class, "p50_us"), us(s.P50))
			res.metric(metricKey(reg.name, s.Class, "p99_us"), us(s.P99))
			res.metric(metricKey(reg.name, s.Class, "p999_us"), us(s.P999))
		}
	}

	lossyTop := byRegime["lossy"][len(serveRates)-1]
	res.check("lossy regime actually lost and recovered (retransmits > 0)",
		lossyTop.Retransmits > 0, "%d retransmits", lossyTop.Retransmits)
	faultyLow := byRegime["faulty"][0]
	res.check("faulty regime exercised SendRetry and kept serving",
		faultyLow.Retries > 0 && faultyLow.Delivered > 0,
		"%d retries, %d delivered", faultyLow.Retries, faultyLow.Delivered)
	// Past the knee even a clean wire retransmits a little — receiver
	// backlog inflates the ACK RTT past the fixed base timeout — so the
	// no-recovery claim is made where it is true: below the knee.
	var cleanRtx uint64
	for _, r := range byRegime["clean"][:2] {
		cleanRtx += r.Retransmits
	}
	res.check("clean wire needs no recovery below the knee (0 retransmits)",
		cleanRtx == 0, "%d retransmits", cleanRtx)

	// Determinism: the top clean trial re-run bit-exactly, serially and
	// on four workers.
	base := byRegime["clean"][len(serveRates)-1]
	again, err := serveTrial(seed, regimes[0], serveRates[len(serveRates)-1], 1)
	if err != nil {
		return nil, err
	}
	wide, err := serveTrial(seed, regimes[0], serveRates[len(serveRates)-1], 4)
	if err != nil {
		return nil, err
	}
	res.check("same seed reproduces the trial exactly",
		base.Fingerprint() == again.Fingerprint(),
		"%016x vs %016x", base.Fingerprint(), again.Fingerprint())
	res.check("workers 1 and 4 produce identical trials",
		base.Fingerprint() == wide.Fingerprint(),
		"%016x vs %016x", base.Fingerprint(), wide.Fingerprint())

	res.Notes = append(res.Notes,
		fmt.Sprintf("seed %#x; arrival process: seeded exponential inter-arrivals, precomputed on simulated time", seed),
		"sojourn = scheduled arrival to send completion, so queueing while the NIC is saturated is charged to the message",
		"small class rides the PIO FIFO window (fire-and-forget); mid/large ride UDMA deliberate updates with SendRetry",
		"lossy regime: 5% drop / 2% dup / 2% corrupt / 5% delay with the reliable-delivery sublayer recovering underneath")
	return res, nil
}
