package experiments

import (
	"os"
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every registered experiment and requires
// every shape check against the paper to pass. This is the repository's
// reproduction gate: if the simulator or cost model drifts, the knees
// of the paper's curves move and these fail.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds; skipped with -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			for _, c := range res.Checks {
				if c.Pass {
					t.Logf("PASS %s: %s", c.Name, c.Detail)
				} else {
					t.Errorf("FAIL %s: %s", c.Name, c.Detail)
				}
			}
			if len(res.Checks) == 0 {
				t.Error("experiment declared no checks")
			}
			if len(res.Tables) == 0 && len(res.Series) == 0 {
				t.Error("experiment produced no output")
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("registry has %d experiments, want 18: %v", len(ids), ids)
	}
	if ids[0] != "e1" || ids[len(ids)-1] != "e18" {
		t.Fatalf("ids out of order: %v", ids)
	}
	for _, id := range ids {
		title, ok := Title(id)
		if !ok || title == "" {
			t.Errorf("no title for %s", id)
		}
	}
	if _, ok := Title("nope"); ok {
		t.Error("Title(nope) claimed to exist")
	}
	if _, err := Run("nope"); err == nil || !strings.Contains(err.Error(), "unknown id") {
		t.Errorf("Run(nope) = %v", err)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{ID: "x"}
	r.check("a", true, "fine")
	if !r.Passed() {
		t.Fatal("Passed false with all-pass checks")
	}
	r.check("b", false, "broken %d", 7)
	if r.Passed() {
		t.Fatal("Passed true with a failing check")
	}
	if r.Checks[1].Detail != "broken 7" {
		t.Fatalf("detail = %q", r.Checks[1].Detail)
	}
	_ = os.Stdout
}
