package experiments

import (
	"fmt"

	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// RunPrototype models the paper's hardware status — "we have a
// four-processor prototype running" — as a scaling experiment: one
// sender pair vs all four nodes sending concurrently. Each node's CPU
// initiates on its own clock and each node's NIC injects into the
// shared backplane, so the aggregate should approach N× a single pair
// until the mesh links saturate.
func RunPrototype() (*Result, error) {
	res := &Result{
		ID:    "e10",
		Title: "Four-node prototype: aggregate deliberate-update bandwidth",
		Paper: "a 4-node prototype runs protected user-level communication concurrently",
	}

	tbl := stats.NewTable("Concurrent senders on a 4-node mesh (32 × 4 KB each)",
		"configuration", "aggregate MB/s", "scaling vs 1 sender")
	configs := []struct {
		name  string
		pairs [][2]int
	}{
		{"1 sender (0→1)", [][2]int{{0, 1}}},
		{"2 disjoint pairs (0→1, 2→3)", [][2]int{{0, 1}, {2, 3}}},
		{"4-node ring (every node sends and receives)", [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
	}
	var bws []float64
	for _, cfg := range configs {
		bw, err := prototypeRun(cfg.pairs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.name, err)
		}
		bws = append(bws, bw)
		tbl.AddRow(cfg.name, fmt.Sprintf("%.1f", bw), fmt.Sprintf("%.2fx", bw/bws[0]))
	}
	res.Tables = append(res.Tables, tbl)

	res.check("two disjoint pairs nearly double aggregate", bws[1] > bws[0]*1.7,
		"%.1f vs %.1f MB/s", bws[1], bws[0])
	res.check("full ring beats two pairs despite shared buses", bws[2] > bws[1]*1.02,
		"%.1f vs %.1f MB/s", bws[2], bws[1])
	res.Notes = append(res.Notes,
		"senders are CPU/EISA-limited (~31 MB/s each), the Paragon links run at 175 MB/s: disjoint pairs scale linearly",
		"in the ring every node's single EISA bus carries both its outgoing bursts and its incoming receive DMAs, so per-sender throughput roughly halves — a real property of the bus-attached SHRIMP design")
	return res, nil
}

// prototypeRun has each (src→dst) pair stream 32 4 KB pages and returns
// aggregate bandwidth (total bytes over the slowest sender's elapsed
// time).
func prototypeRun(pairs [][2]int) (float64, error) {
	const nodes = 4
	const messages = 32
	const size = 4096
	c := cluster.New(cluster.Config{
		Nodes:   nodes,
		Machine: machine.Config{RAMFrames: 96},
		NIC:     nic.Config{NIPTPages: 16},
	})
	defer c.Shutdown()
	costs := c.Nodes[0].Costs

	senders := len(pairs)
	errs := make([]error, senders)
	for i, pair := range pairs {
		i, s, dst := i, pair[0], pair[1]
		// Receive frames: raw frames 48.. on the destination.
		if err := udmalib.MapSendWindow(c.NICs[s], 0, dst, []uint32{48}); err != nil {
			return 0, err
		}
		c.Nodes[s].Kernel.Spawn(fmt.Sprintf("sender%d", s), func(p *kernel.Proc) {
			d, err := udmalib.Open(p, c.NICs[s], true)
			if err != nil {
				errs[i] = err
				return
			}
			va, err := p.Alloc(size)
			if err != nil {
				errs[i] = err
				return
			}
			if err := p.WriteBuf(va, workload.Payload(size, byte(s+1))); err != nil {
				errs[i] = err
				return
			}
			for m := 0; m < messages; m++ {
				if err := d.Send(va, 0, size); err != nil {
					errs[i] = err
					return
				}
			}
		})
	}
	if err := c.Run(5_000_000_000); err != nil {
		return 0, err
	}
	for s, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("sender %d: %w", s, err)
		}
	}
	var slowest float64
	for _, pair := range pairs {
		if t := costs.Seconds(c.Nodes[pair[0]].Clock.Now()); t > slowest {
			slowest = t
		}
	}
	total := float64(senders * messages * size)
	return total / slowest / 1e6, nil
}
