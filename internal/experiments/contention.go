package experiments

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/telemetry"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// RunContextSwitch reproduces the Section 6 / invariant I1 machinery:
// the kernel fires one Inval store on every context switch, so a
// process preempted between its STORE and LOAD retries the sequence.
// We share one UDMA device among 1–8 untrusting sender processes and
// show (a) everyone's data arrives intact, (b) retries appear as soon
// as there is sharing, (c) one Inval per context switch, and (d) the
// per-sender overhead of the recovery protocol stays small.
func RunContextSwitch() (*Result, error) {
	res := &Result{
		ID:    "e7",
		Title: "Context-switch Inval (I1) under device sharing",
		Paper: "recovery is one STORE per switch; the application retries and loses little",
	}

	// 4 KB messages: each transfer (~125 µs of bus time) spans several
	// 2000-cycle quanta, so competing initiations really do find the
	// engine busy and exercise the retry protocol.
	tbl := stats.NewTable("N senders sharing one UDMA device (64 messages of 4 KB each)",
		"senders", "total µs", "retries", "invals", "ctx switches", "µs/message",
		"xfer p50 µs", "xfer p99 µs", "xfer p999 µs")
	series := &stats.Series{Name: "aggregate time vs senders", XLabel: "senders", YLabel: "µs"}

	var rows []contentionRow
	for _, senders := range []int{1, 2, 4, 8} {
		r, err := contentionRun(senders, 64, 4096)
		if err != nil {
			return nil, fmt.Errorf("%d senders: %w", senders, err)
		}
		rows = append(rows, r)
		series.Add(float64(senders), r.us)
		tbl.AddRow(fmt.Sprintf("%d", r.n), fmt.Sprintf("%.0f", r.us),
			fmt.Sprintf("%d", r.retries), fmt.Sprintf("%d", r.invals),
			fmt.Sprintf("%d", r.switches), fmt.Sprintf("%.1f", r.perMsg),
			fmt.Sprintf("%.1f", r.p50us), fmt.Sprintf("%.1f", r.p99us),
			fmt.Sprintf("%.1f", r.p999us))
	}
	res.Tables = append(res.Tables, tbl)
	res.Series = append(res.Series, series)

	res.check("single sender needs no retries", rows[0].retries == 0,
		"%d retries with 1 sender", rows[0].retries)
	res.check("sharing produces retries (I1 recovery in action)", rows[2].retries > 0,
		"%d retries with 4 senders", rows[2].retries)
	res.check("one Inval per context switch", allInvalsMatch(rows),
		"invals == context switches in every configuration")
	res.check("per-message cost grows slowly with sharing",
		rows[3].perMsg < rows[0].perMsg*16,
		"%.1f µs/msg at 8 senders vs %.1f at 1 (device is serialized, CPU is shared)",
		rows[3].perMsg, rows[0].perMsg)
	res.check("transfer latency histogram populated", rows[0].p50us > 0 && rows[3].p99us > 0,
		"p50 %.1f µs at 1 sender, p99 %.1f µs at 8", rows[0].p50us, rows[3].p99us)
	res.check("latency percentiles ordered (p50 <= p99 <= p999)",
		percentilesOrdered(rows),
		"p50 %.1f <= p99 %.1f <= p999 %.1f µs at 8 senders",
		rows[3].p50us, rows[3].p99us, rows[3].p999us)
	res.metric("per_msg_us_1_sender", rows[0].perMsg)
	res.metric("per_msg_us_8_senders", rows[3].perMsg)
	res.metric("xfer_p50_us_1_sender", rows[0].p50us)
	res.metric("xfer_p99_us_8_senders", rows[3].p99us)
	res.metric("xfer_p999_us_8_senders", rows[3].p999us)
	res.metric("retries_8_senders", float64(rows[3].retries))
	return res, nil

}

type contentionRow struct {
	n        int
	us       float64
	retries  uint64
	invals   uint64
	switches uint64
	perMsg   float64
	p50us    float64 // enqueue→completion transfer latency percentiles
	p99us    float64
	p999us   float64
}

func percentilesOrdered(rows []contentionRow) bool {
	for _, r := range rows {
		if r.p50us > r.p99us || r.p99us > r.p999us {
			return false
		}
	}
	return true
}

func allInvalsMatch(rows []contentionRow) bool {
	for _, r := range rows {
		if r.invals != r.switches {
			return false
		}
	}
	return true
}

func contentionRun(senders, messages, size int) (contentionRow, error) {
	var out contentionRow
	out.n = senders

	// Telemetry is a pure observer, so attaching a registry here cannot
	// perturb the timing the experiment measures.
	reg := telemetry.New()
	n := machine.New(0, machine.Config{
		RAMFrames: 64 + senders*2,
		Kernel:    kernel.Config{Quantum: 2000},
		Metrics:   reg,
	})
	buf := device.NewBuffer("buf", uint32(senders+1), 4, 0)
	n.AttachDevice(buf, 0)
	defer n.Kernel.Shutdown()

	errs := make([]error, senders)
	var totalRetries uint64
	for i := 0; i < senders; i++ {
		i := i
		n.Kernel.Spawn(fmt.Sprintf("sender%d", i), func(p *kernel.Proc) {
			d, err := udmalib.Open(p, buf, true)
			if err != nil {
				errs[i] = err
				return
			}
			va, err := p.Alloc(4096)
			if err != nil {
				errs[i] = err
				return
			}
			if err := p.WriteBuf(va, workload.Payload(size, byte(i+1))); err != nil {
				errs[i] = err
				return
			}
			for m := 0; m < messages; m++ {
				if err := d.Send(va, uint32(i)<<addr.PageShift, size); err != nil {
					errs[i] = err
					return
				}
			}
			totalRetries += d.Stats().Retries
		})
	}
	if err := n.Kernel.Run(sim.Forever); err != nil {
		return out, err
	}
	for i, err := range errs {
		if err != nil {
			return out, fmt.Errorf("sender %d: %w", i, err)
		}
	}
	// Verify protection: each sender's device page holds its own data.
	for i := 0; i < senders; i++ {
		want := workload.Payload(size, byte(i+1))
		got := buf.Bytes(i*addr.PageSize, size)
		for j := range want {
			if got[j] != want[j] {
				return out, fmt.Errorf("sender %d data corrupted at byte %d", i, j)
			}
		}
	}

	ks := n.Kernel.Stats()
	out.us = n.Costs.Micros(n.Clock.Now())
	out.retries = totalRetries
	out.invals = ks.Invals
	out.switches = ks.ContextSwitches
	out.perMsg = out.us / float64(senders*messages)
	lat := reg.Histogram("udma_xfer_latency_cycles", telemetry.L("node", "0"))
	out.p50us = n.Costs.Micros(sim.Cycles(lat.Quantile(0.5)))
	out.p99us = n.Costs.Micros(sim.Cycles(lat.Quantile(0.99)))
	out.p999us = n.Costs.Micros(sim.Cycles(lat.Quantile(0.999)))
	return out, nil
}
