// Package experiments contains one driver per table/figure reproduced
// from the paper (the E1–E10 index in DESIGN.md). Each driver builds
// the machines it needs, runs the workload, and returns a Result whose
// tables and series are what cmd/udmabench prints and whose Checks
// assert the paper's qualitative shape (who wins, where the knees are).
package experiments

import (
	"fmt"
	"sort"

	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
)

// Check is one shape assertion against the paper.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Result is an experiment's output.
type Result struct {
	ID     string
	Title  string
	Paper  string // what the paper reports, quoted for the reader
	Tables []*stats.Table
	Series []*stats.Series
	Checks []Check
	Notes  []string
	// Metrics holds machine-readable headline numbers (bandwidth,
	// latency percentiles, delivery counts) keyed by a short name —
	// what `udmabench -json` emits for regression tracking.
	Metrics map[string]float64
}

func (r *Result) check(name string, pass bool, format string, args ...any) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
}

// metric records one headline number under a short machine-readable key.
func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Passed reports whether every check passed.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Runner produces a Result.
type Runner func() (*Result, error)

var registry = map[string]struct {
	title string
	run   Runner
}{
	"e1":  {"Figure 8: deliberate-update bandwidth vs message size", RunFig8},
	"e2":  {"Section 8: UDMA transfer initiation cost (≈2.8 µs)", RunInitiationCost},
	"e3":  {"Section 1: traditional DMA overhead on a HIPPI-class channel", RunHIPPIOverhead},
	"e4":  {"Sections 2–3: initiation cost breakdown, kernel DMA vs UDMA", RunInitiationComparison},
	"e5":  {"Section 9: memory-mapped FIFO (PIO) vs UDMA", RunPIOvsUDMA},
	"e6":  {"Section 7: multi-page transfers with hardware queueing", RunQueueing},
	"e7":  {"Section 6 (I1): context-switch Inval under device sharing", RunContextSwitch},
	"e8":  {"Section 6 (I4): page pinning vs UDMA remap guard under paging", RunPinningVsGuard},
	"e9":  {"Section 8: NIPT translation and capacity", RunNIPT},
	"e10": {"Section 8: four-node prototype, aggregate bandwidth", RunPrototype},
	"e11": {"Extension: automatic update vs deliberate update", RunAutoVsDeliberate},
	"e12": {"Extension: fault injection and per-transfer error recovery", RunFaultInjection},
	"e13": {"Extension: lossy wire, reliable delivery — goodput and latency vs loss", RunLossyWire},
	"e14": {"Extension: parallel simulation — serial vs parallel wall-clock speedup", RunParallelSpeedup},
	"e15": {"Extension: open-loop serving — offered-rate sweep and SLO readout", RunServe},
	"e16": {"Extension: connection churn — goodput and tails vs NIPT cache capacity", RunChurn},
	"e17": {"Extension: crash–restart chaos — availability dips and time-to-recover", RunChaos},
	"e18": {"Extension: routed fabric at scale — 64-node mesh/torus link contention", RunScaleOut},
}

// sweepWorkers is how many host goroutines the rate/seed sweeps inside
// experiments (e12's fault-rate curve, e13's loss-rate curve) may use.
// Default 1 keeps the historical serial behavior; cmd/udmabench's
// -workers flag raises it. Results are identical at any value — each
// trial builds its own simulator and the sweep returns results in input
// order — only wall-clock time changes.
var sweepWorkers = 1

// SetSweepWorkers sets the sweep parallelism (values < 1 mean serial).
func SetSweepWorkers(n int) {
	if n < 1 {
		n = 1
	}
	sweepWorkers = n
}

// IDs returns the registered experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Title returns an experiment's one-line description.
func Title(id string) (string, bool) {
	e, ok := registry[id]
	return e.title, ok
}

// Run executes one experiment by id.
func Run(id string) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return e.run()
}

// --- shared helpers ---------------------------------------------------------

// runOn spawns fn as the only process on the node and drives the
// kernel to completion, shutting the node down afterward.
func runOn(n *machine.Node, name string, fn func(p *kernel.Proc) error) error {
	var procErr error
	n.Kernel.Spawn(name, func(p *kernel.Proc) {
		procErr = fn(p)
	})
	if err := n.Kernel.Run(sim.Forever); err != nil {
		return fmt.Errorf("experiments: kernel run: %w", err)
	}
	return procErr
}

// mbps converts (bytes, cycles) into MB/s under the given cost model.
func mbps(costs *sim.CostModel, bytes int, cycles sim.Cycles) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(bytes) / costs.Seconds(cycles) / 1e6
}
