package experiments

import (
	"fmt"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// RunQueueing reproduces Section 7: hardware request queueing "allows a
// user-level process to start multi-page transfers with only two
// instructions per page in the best case. If the source and destination
// addresses are not aligned to the same offset on their respective
// pages, two transfers per page are needed." We sweep message size and
// queue depth, plus the misalignment ablation.
func RunQueueing() (*Result, error) {
	res := &Result{
		ID:    "e6",
		Title: "Multi-page transfers with hardware queueing",
		Paper: "queueing: 2 instructions/page; misaligned transfers need 2 transfers/page",
	}

	depths := []int{0, 2, 8, 32}
	tbl := stats.NewTable("Multi-page send time (µs) by queue depth",
		append([]string{"message"}, func() []string {
			out := make([]string, len(depths))
			for i, d := range depths {
				if d == 0 {
					out[i] = "serial (no queue)"
				} else {
					out[i] = fmt.Sprintf("depth %d", d)
				}
			}
			return out
		}()...)...)

	series := &stats.Series{Name: "queued send speedup over serial", XLabel: "message size (bytes)", YLabel: "speedup"}
	var speedup64K float64
	for _, size := range workload.MultiPageSizes() {
		row := []string{stats.Bytes(size)}
		var serialUS float64
		for _, depth := range depths {
			us, err := queuedSendTime(size, depth, 0)
			if err != nil {
				return nil, fmt.Errorf("size %d depth %d: %w", size, depth, err)
			}
			row = append(row, fmt.Sprintf("%.0f", us))
			if depth == 0 {
				serialUS = us
			}
			if depth == 8 {
				series.Add(float64(size), serialUS/us)
				if size == 65536 {
					speedup64K = serialUS / us
				}
			}
		}
		tbl.AddRow(row...)
	}
	res.Tables = append(res.Tables, tbl)
	res.Series = append(res.Series, series)

	// Misalignment ablation at 32 KB, depth 8.
	aligned, err := queuedSendTime(32768, 8, 0)
	if err != nil {
		return nil, err
	}
	misaligned, err := queuedSendTime(32768, 8, 2048)
	if err != nil {
		return nil, err
	}
	mtbl := stats.NewTable("Alignment ablation (32 KB, queue depth 8)",
		"source offset", "µs", "transfers")
	alignedX, err := queuedSendTransfers(32768, 8, 0)
	if err != nil {
		return nil, err
	}
	misX, err := queuedSendTransfers(32768, 8, 2048)
	if err != nil {
		return nil, err
	}
	mtbl.AddRow("page-aligned", fmt.Sprintf("%.0f", aligned), fmt.Sprintf("%d", alignedX))
	mtbl.AddRow("offset 2 KB", fmt.Sprintf("%.0f", misaligned), fmt.Sprintf("%d", misX))
	res.Tables = append(res.Tables, mtbl)

	res.check("queueing (depth 8) beats serial at 64 KB", speedup64K > 1.02,
		"speedup %.2fx", speedup64K)
	res.check("aligned uses 1 transfer/page", alignedX == 8, "%d transfers for 8 pages", alignedX)
	res.check("misaligned uses ~2 transfers/page", misX >= 15 && misX <= 17,
		"%d transfers for 8 pages (paper: two per page)", misX)
	res.check("misaligned slower than aligned", misaligned > aligned,
		"%.0f µs vs %.0f µs", misaligned, aligned)
	return res, nil
}

func queuedSendRun(size, depth int, srcOff uint32) (sim.Cycles, udmalib.Stats, *sim.CostModel, error) {
	n := machine.New(0, machine.Config{
		RAMFrames: size/4096 + 64,
		UDMA:      core.Config{QueueDepth: depth},
	})
	buf := device.NewBuffer("buf", uint32(size/4096+4), 4, 0)
	n.AttachDevice(buf, 0)
	defer n.Kernel.Shutdown()

	var elapsed sim.Cycles
	var libStats udmalib.Stats
	err := runOn(n, "p", func(p *kernel.Proc) error {
		d, err := udmalib.Open(p, buf, true)
		if err != nil {
			return err
		}
		va, err := p.Alloc(size + 4096)
		if err != nil {
			return err
		}
		if err := p.WriteBuf(va+addr.VAddr(srcOff), workload.Payload(size, 2)); err != nil {
			return err
		}
		send := func() error {
			if depth > 0 {
				return d.QueuedSend(va+addr.VAddr(srcOff), 0, size)
			}
			return d.Send(va+addr.VAddr(srcOff), 0, size)
		}
		if err := send(); err != nil { // warm-up
			return err
		}
		before := d.Stats()
		start := p.Now()
		if err := send(); err != nil {
			return err
		}
		elapsed = p.Now() - start
		after := d.Stats()
		libStats = udmalib.Stats{
			Initiations: after.Initiations - before.Initiations,
			Retries:     after.Retries - before.Retries,
		}
		return nil
	})
	return elapsed, libStats, n.Costs, err
}

func queuedSendTime(size, depth int, srcOff uint32) (float64, error) {
	cycles, _, costs, err := queuedSendRun(size, depth, srcOff)
	if err != nil {
		return 0, err
	}
	return costs.Micros(cycles), nil
}

func queuedSendTransfers(size, depth int, srcOff uint32) (uint64, error) {
	_, st, _, err := queuedSendRun(size, depth, srcOff)
	if err != nil {
		return 0, err
	}
	return st.Initiations, nil
}
