package experiments

import (
	"errors"
	"fmt"
	"sort"

	"shrimp/internal/cluster"
	"shrimp/internal/interconnect"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/sweep"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// LossySeed is the default seed for the lossy-wire sweep; shrimpsim's
// lossy scenario overrides it from the command line.
const LossySeed = 0x10_55_1e

const (
	lossyMsgBytes = 1024
	lossyMsgCount = 128
)

// lossTrial is one point of the loss-rate sweep: messages pushed
// through SendRetry over a wire dropping (and corrupting, duplicating,
// reordering) packets at the given rate, with the NIC's reliability
// sublayer recovering underneath.
type lossTrial struct {
	Rate      float64
	Messages  int
	Delivered int // SendRetry returned nil
	Failed    int // typed failure (RetryExhausted / DeliveryError)

	Retransmits  uint64
	RetransBytes uint64
	WireBytes    uint64
	RecvBytes    uint64
	CreditStalls uint64
	DeliveryFail uint64
	WireDrops    uint64
	WireCorrupts uint64

	Elapsed  sim.Cycles
	P50, P99 sim.Cycles // per-message SendRetry completion latency

	Costs *sim.CostModel
}

func (t *lossTrial) goodput() float64 {
	return mbps(t.Costs, t.Delivered*lossyMsgBytes, t.Elapsed)
}

// wireOverhead is the fraction of wire payload bytes that were
// retransmissions — what the loss rate costs in link capacity.
func (t *lossTrial) wireOverhead() float64 {
	if t.WireBytes == 0 {
		return 0
	}
	return float64(t.RetransBytes) / float64(t.WireBytes)
}

// runLossTrial streams lossyMsgCount one-page messages from node 0 to
// node 1 of a two-node cluster whose backplane drops packets at rate
// (plus a fixed 2% corruption, 2% duplication and 5% late-delivery mix
// when lossy at all), and measures delivery outcome and per-message
// completion latency at the sender.
func runLossTrial(rate float64, seed uint64) (*lossTrial, error) {
	cfg := cluster.Config{
		Nodes:   2,
		Machine: machine.Config{RAMFrames: 96},
		NIC: nic.Config{
			NIPTPages: 16,
			// A deliberately small protocol window so the sweep shows
			// backpressure: with a drop in flight the window fills, the
			// pending queue hits its bound and CheckTransfer bounces —
			// loss then surfaces in sender-side latency instead of being
			// fully hidden behind pipelining.
			Reliability: nic.ReliabilityConfig{Enabled: true, Window: 2, MaxPending: 4},
		},
		// The lockstep window bounds cross-node causality error; it must
		// sit well under the retransmit timeout (4096 cycles) or ACKs
		// appear to arrive late and every packet retransmits spuriously.
		Window: 250,
	}
	if rate > 0 {
		cfg.Fault = interconnect.FaultPlan{
			Seed:        seed,
			DropRate:    rate,
			CorruptRate: 0.02,
			DupRate:     0.02,
			DelayRate:   0.05,
		}
	}
	c := cluster.New(cfg)
	defer c.Shutdown()
	costs := c.Nodes[0].Costs

	t := &lossTrial{Rate: rate, Messages: lossyMsgCount, Costs: costs}
	if err := udmalib.MapSendWindow(c.NICs[0], 0, 1, []uint32{48}); err != nil {
		return nil, err
	}
	var lats []sim.Cycles
	var procErr error
	c.Nodes[0].Kernel.Spawn("sender", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, c.NICs[0], true)
		if err != nil {
			procErr = err
			return
		}
		va, err := p.Alloc(lossyMsgBytes)
		if err != nil {
			procErr = err
			return
		}
		if err := p.WriteBuf(va, workload.Payload(lossyMsgBytes, 5)); err != nil {
			procErr = err
			return
		}
		// Generous attempt budget: at 20% loss the credit window stalls
		// often and each stall surfaces as a retryable queue-full.
		pol := udmalib.RetryPolicy{MaxAttempts: 12, Backoff: 512}
		start := p.Now()
		for m := 0; m < lossyMsgCount; m++ {
			s0 := p.Now()
			err := d.SendRetry(va, 0, lossyMsgBytes, pol)
			switch {
			case err == nil:
				t.Delivered++
				lats = append(lats, p.Now()-s0)
			case errors.As(err, new(*udmalib.RetryExhaustedError)):
				t.Failed++
			default:
				procErr = err
				return
			}
		}
		t.Elapsed = p.Now() - start
	})
	if err := c.Run(5_000_000_000); err != nil {
		return nil, err
	}
	if procErr != nil {
		return nil, procErr
	}
	// c.Run drained the hardware: retransmit timers have either
	// delivered or given up, so the counters below are final.
	s0, s1 := c.NICs[0].Stats(), c.NICs[1].Stats()
	t.Retransmits, t.RetransBytes = s0.Retransmits, s0.RetransBytes
	t.CreditStalls, t.DeliveryFail = s0.CreditStalls, s0.DeliveryFailures
	t.RecvBytes = s1.BytesReceived
	_, t.WireBytes, _, _ = c.Backplane.Stats()
	fs := c.Backplane.FaultStats()
	t.WireDrops, t.WireCorrupts = fs.Drops+fs.FlapDrops, fs.Corrupts
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		t.P50 = lats[len(lats)/2]
		t.P99 = lats[min(len(lats)-1, len(lats)*99/100)]
	}
	return t, nil
}

// lossyFingerprint condenses a trial into the tuple two same-seed runs
// must reproduce exactly.
func lossyFingerprint(t *lossTrial) string {
	return fmt.Sprintf("d=%d f=%d rtx=%d/%d wire=%d recv=%d stall=%d el=%d p50=%d p99=%d",
		t.Delivered, t.Failed, t.Retransmits, t.RetransBytes, t.WireBytes,
		t.RecvBytes, t.CreditStalls, t.Elapsed, t.P50, t.P99)
}

// RunLossyWire is E13: goodput and completion latency over a lossy
// interconnect. The paper assumes the SHRIMP backplane delivers every
// packet intact and in order (a safe bet for a machine-room mesh); this
// experiment breaks that assumption — seeded drops, corruption,
// duplication and reordering — and measures what the NIC's reliable
// delivery protocol (seq/ACK/retransmit, CRC, credit backpressure)
// preserves: every message is delivered byte-exact or fails with a
// typed error, goodput degrades gracefully with loss, and tail latency
// absorbs the retransmission delays.
func RunLossyWire() (*Result, error) {
	return RunLossyWireSeeded(LossySeed)
}

// RunLossyWireSeeded is RunLossyWire under a caller-chosen seed.
func RunLossyWireSeeded(seed uint64) (*Result, error) {
	res := &Result{
		ID:    "e13",
		Title: "Lossy wire: goodput and latency under the reliable delivery protocol",
		Paper: "the paper assumes a reliable, in-order interconnect; this extension drops that assumption",
	}

	rates := []float64{0, 0.02, 0.05, 0.10, 0.20}
	tbl := stats.NewTable("Reliable delivery over a lossy wire (128 × 1 KB messages, 2% corruption)",
		"drop rate", "delivered", "retransmits", "wire overhead", "credit stalls",
		"goodput MB/s", "p50 µs", "p99 µs")
	// Each rate's trial is an independent two-node cluster, so the sweep
	// fans out across workers; results come back in rate order, keeping
	// the table byte-identical at any parallelism.
	type trialOut struct {
		t   *lossTrial
		err error
	}
	outs := sweep.Run(len(rates), sweepWorkers, func(i int) trialOut {
		t, err := runLossTrial(rates[i], seed)
		return trialOut{t, err}
	})
	var trials []*lossTrial
	for i, out := range outs {
		if out.err != nil {
			return nil, fmt.Errorf("rate %.2f: %w", rates[i], out.err)
		}
		t := out.t
		trials = append(trials, t)
		tbl.AddRow(fmt.Sprintf("%.2f", rates[i]),
			fmt.Sprintf("%d/%d", t.Delivered, t.Messages),
			fmt.Sprintf("%d", t.Retransmits),
			fmt.Sprintf("%.1f%%", 100*t.wireOverhead()),
			fmt.Sprintf("%d", t.CreditStalls),
			fmt.Sprintf("%.1f", t.goodput()),
			fmt.Sprintf("%.1f", t.Costs.Micros(t.P50)),
			fmt.Sprintf("%.1f", t.Costs.Micros(t.P99)))
	}
	res.Tables = append(res.Tables, tbl)

	good := &stats.Series{Name: "goodput vs drop rate", XLabel: "packet drop probability", YLabel: "MB/s"}
	p99s := &stats.Series{Name: "p99 completion latency vs drop rate", XLabel: "packet drop probability", YLabel: "µs"}
	for _, t := range trials {
		good.Add(t.Rate, t.goodput())
		p99s.Add(t.Rate, t.Costs.Micros(t.P99))
	}
	res.Series = append(res.Series, good, p99s)

	clean, worst := trials[0], trials[len(trials)-1]
	res.check("clean wire needs no recovery",
		clean.Retransmits == 0 && clean.Delivered == clean.Messages && clean.WireDrops == 0,
		"rtx=%d delivered=%d/%d", clean.Retransmits, clean.Delivered, clean.Messages)
	var lostAndRecovered, accounted = false, true
	for _, t := range trials[1:] {
		if t.WireDrops > 0 && t.Retransmits > 0 {
			lostAndRecovered = true
		}
		if t.Delivered+t.Failed != t.Messages {
			accounted = false
		}
		if t.Failed == 0 && t.DeliveryFail == 0 && t.RecvBytes != uint64(t.Messages*lossyMsgBytes) {
			accounted = false
		}
	}
	res.check("the wire actually dropped packets and the NIC retransmitted", lostAndRecovered, "")
	res.check("every message delivered byte-for-byte or failed typed (no silent loss)", accounted,
		"worst rate: %d delivered + %d failed of %d, %d bytes landed",
		worst.Delivered, worst.Failed, worst.Messages, worst.RecvBytes)
	res.check("goodput degrades with loss but survives 20% drop",
		worst.goodput() < clean.goodput() && worst.goodput() > 0,
		"%.1f MB/s at %.0f%% drop vs %.1f MB/s clean",
		worst.goodput(), 100*worst.Rate, clean.goodput())
	res.check("tail latency absorbs the retransmission delays",
		worst.P99 > clean.P99,
		"p99 %.1f µs at %.0f%% drop vs %.1f µs clean",
		worst.Costs.Micros(worst.P99), 100*worst.Rate, clean.Costs.Micros(clean.P99))

	again, err := runLossTrial(worst.Rate, seed)
	if err != nil {
		return nil, err
	}
	fp1, fp2 := lossyFingerprint(worst), lossyFingerprint(again)
	res.check("same seed reproduces the run exactly", fp1 == fp2, "%s vs %s", fp1, fp2)

	res.metric("clean_goodput_mbps", clean.goodput())
	res.metric("worst_rate_goodput_mbps", worst.goodput())
	res.metric("clean_p50_us", clean.Costs.Micros(clean.P50))
	res.metric("clean_p99_us", clean.Costs.Micros(clean.P99))
	res.metric("worst_rate_p50_us", worst.Costs.Micros(worst.P50))
	res.metric("worst_rate_p99_us", worst.Costs.Micros(worst.P99))
	res.metric("worst_rate_retransmits", float64(worst.Retransmits))
	res.metric("worst_rate_wire_overhead", worst.wireOverhead())
	res.Notes = append(res.Notes,
		fmt.Sprintf("seed %#x; reliability: window 2, max pending 4, retransmit timeout 4096 cycles doubling, 8 retries", seed),
		"latency is the sender-side SendRetry completion time, so credit-window stalls (backpressure from unacknowledged packets) show up in the tail")
	return res, nil
}
