package experiments

import (
	"fmt"

	"shrimp/internal/loadgen"
	"shrimp/internal/machine"
	"shrimp/internal/stats"
	"shrimp/internal/sweep"
)

// ChurnSeed is the default seed for the connection-churn capacity
// sweep; shrimpsim's churn scenario overrides it from the command line.
const ChurnSeed = 0xc4_42_a1

// The churn workload shape: a small live population of short-lived
// flows, each dying after a couple of messages, so the schedule births
// hundreds of distinct flows — one NIPT entry each — while only
// ActiveFlows are ever hot at once. The capacity sweep then measures
// what a bounded on-board NIPT cache costs against that working set.
const (
	churnNodes       = 4
	churnMessages    = 600
	churnRate        = 220
	churnActiveFlows = 48
	churnMsgsPerFlow = 2
	churnReclaimAge  = 150_000
	churnJitter      = 64
)

// churnCapacities is the bounded part of the sweep; the ample (= whole
// backing table) and unbounded points are appended at run time.
var churnCapacities = []int{8, 24, 64, 192}

func churnConfig(seed uint64) loadgen.Config {
	return loadgen.Config{
		Nodes:       churnNodes,
		Seed:        seed,
		Rate:        churnRate,
		Messages:    churnMessages,
		Churn:       true,
		ActiveFlows: churnActiveFlows,
		MsgsPerFlow: churnMsgsPerFlow,
	}
}

func churnTrial(seed uint64, capacity, workers int) (*loadgen.Result, error) {
	res, err := loadgen.RunTrial(loadgen.TrialConfig{
		Config:           churnConfig(seed),
		Workers:          workers,
		NIPTCapacity:     capacity,
		NIPTRefillJitter: churnJitter,
		IdleReclaimAge:   churnReclaimAge,
	})
	if err != nil {
		return nil, fmt.Errorf("capacity %d: %w", capacity, err)
	}
	return res, nil
}

// RunChurn is E16: connection churn vs NIPT capacity. The loadgen churn
// scenario offers open-loop traffic over hundreds of short-lived flows
// (flow birth/death on simulated time, one NIPT entry per flow) and
// sweeps the board's NIPT cache capacity from far-too-small through
// ample to unbounded, reading back goodput, sojourn percentiles, cache
// hit/miss/eviction counts and reliability-state reclamation.
func RunChurn() (*Result, error) {
	return RunChurnSeeded(ChurnSeed)
}

// RunChurnSeeded is RunChurn under a caller-chosen seed.
func RunChurnSeeded(seed uint64) (*Result, error) {
	res := &Result{
		ID:    "e16",
		Title: "Extension: connection churn — goodput and tails vs NIPT cache capacity",
		Paper: "the paper sizes the NIPT to cover all of physical memory; at datacenter connection counts the board holds a cache and the table lives in host memory",
	}
	costs := machine.SHRIMP1996()
	us := func(cycles float64) float64 { return costs.Micros(1) * cycles }

	// Total flow population decides what "ample" means: a cache that
	// holds every entry must be bit-identical to the unbounded table.
	plan := loadgen.BuildPlan(churnConfig(seed))
	ample := int(plan.NIPTEntries())
	capacities := append(append([]int{}, churnCapacities...), ample, 0)
	labels := make([]string, len(capacities))
	for i, c := range capacities {
		switch {
		case c == 0:
			labels[i] = "unbounded"
		case c == ample:
			labels[i] = "ample"
		default:
			labels[i] = fmt.Sprint(c)
		}
	}

	type cell struct {
		res *loadgen.Result
		err error
	}
	outs := sweep.Run(len(capacities), sweepWorkers, func(i int) cell {
		r, err := churnTrial(seed, capacities[i], 1)
		return cell{r, err}
	})
	trials := make([]*loadgen.Result, len(outs))
	for i, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		trials[i] = out.res
	}

	tbl := stats.NewTable(
		fmt.Sprintf("Connection churn vs NIPT capacity (%d msgs, %d live / %d total flows, %d deaths, %d nodes; latency = sojourn µs)",
			churnMessages, churnActiveFlows, len(plan.Flows), plan.FlowDeaths, churnNodes),
		"capacity", "goodput B/Mc", "hit rate", "misses", "evictions", "refill cyc",
		"reclaims", "small p50/p99/p999", "mid p50/p99/p999")
	goodputSer := &stats.Series{Name: "goodput vs NIPT capacity",
		XLabel: "cache capacity (entries; 0 = unbounded)", YLabel: "goodput B/Mcycle"}
	accounted, ordered, tails := true, true, true
	for i, r := range trials {
		if r.Delivered+r.Failed != r.Messages {
			accounted = false
		}
		if r.OrderViolations != 0 {
			ordered = false
		}
		hitRate := 1.0
		if r.NIPTLookups > 0 {
			hitRate = float64(r.NIPTHits) / float64(r.NIPTLookups)
		}
		row := []string{
			labels[i],
			fmt.Sprintf("%.0f", r.Goodput()),
			fmt.Sprintf("%.3f", hitRate),
			fmt.Sprintf("%d", r.NIPTMisses),
			fmt.Sprintf("%d", r.NIPTEvictions),
			fmt.Sprintf("%d", r.NIPTRefillCycles),
			fmt.Sprintf("%d", r.Reclaims),
		}
		for _, c := range []loadgen.Class{loadgen.ClassSmall, loadgen.ClassMid} {
			s := &r.Classes[c]
			if s.Delivered > 0 && !(s.P50 <= s.P99 && s.P99 <= s.P999) {
				tails = false
			}
			row = append(row, fmt.Sprintf("%.1f/%.1f/%.1f", us(s.P50), us(s.P99), us(s.P999)))
		}
		tbl.AddRow(row...)
		goodputSer.Add(float64(capacities[i]), r.Goodput())

		res.metric(metricKey("cap", labels[i], "goodput_bpmc"), r.Goodput())
		res.metric(metricKey("cap", labels[i], "misses"), float64(r.NIPTMisses))
		sm := &r.Classes[loadgen.ClassSmall]
		res.metric(metricKey("cap", labels[i], "p50_us"), us(sm.P50))
		res.metric(metricKey("cap", labels[i], "p99_us"), us(sm.P99))
		res.metric(metricKey("cap", labels[i], "p999_us"), us(sm.P999))
	}
	res.Tables = append(res.Tables, tbl)
	res.Series = append(res.Series, goodputSer)

	res.check("every message delivered or failed typed at every capacity", accounted, "")
	res.check("per-flow FIFO order held at every capacity (0 violations)", ordered, "")
	res.check("sojourn percentiles ordered p50 <= p99 <= p999 everywhere", tails, "")

	res.check("the schedule actually churned (hundreds of flow deaths)",
		plan.FlowDeaths >= 100, "%d deaths over %d messages", plan.FlowDeaths, churnMessages)

	tiny, big := trials[0], trials[len(churnCapacities)-1]
	ampleTrial, unbounded := trials[len(trials)-2], trials[len(trials)-1]
	res.check("a tiny cache misses far more than a big one",
		tiny.NIPTMisses > big.NIPTMisses,
		"capacity %d: %d misses vs capacity %d: %d misses",
		capacities[0], tiny.NIPTMisses, capacities[len(churnCapacities)-1], big.NIPTMisses)
	res.check("a tiny cache evicts under churn; the unbounded table never does",
		tiny.NIPTEvictions > 0 && unbounded.NIPTEvictions == 0,
		"%d vs %d evictions", tiny.NIPTEvictions, unbounded.NIPTEvictions)
	res.check("idle reliability state was reclaimed and resurrected during the run",
		tiny.Reclaims > 0 && tiny.Resurrections > 0,
		"%d reclaims, %d resurrections", tiny.Reclaims, tiny.Resurrections)
	res.check("a cache holding the whole table is bit-identical to the unbounded table",
		ampleTrial.Fingerprint() == unbounded.Fingerprint(),
		"%016x vs %016x", ampleTrial.Fingerprint(), unbounded.Fingerprint())

	// Determinism: the tiny-capacity trial re-run bit-exactly, serially
	// and on four workers.
	again, err := churnTrial(seed, capacities[0], 1)
	if err != nil {
		return nil, err
	}
	wide, err := churnTrial(seed, capacities[0], 4)
	if err != nil {
		return nil, err
	}
	res.check("same seed reproduces the churn trial exactly",
		tiny.Fingerprint() == again.Fingerprint(),
		"%016x vs %016x", tiny.Fingerprint(), again.Fingerprint())
	res.check("workers 1 and 4 produce identical churn trials",
		tiny.Fingerprint() == wide.Fingerprint(),
		"%016x vs %016x", tiny.Fingerprint(), wide.Fingerprint())

	res.Notes = append(res.Notes,
		fmt.Sprintf("seed %#x; %d live flows, mean %d msgs per flow, %d total flows over the schedule",
			seed, churnActiveFlows, churnMsgsPerFlow, len(plan.Flows)),
		"each flow owns one NIPT entry; misses pay a seeded refill from host memory on simulated time",
		fmt.Sprintf("idle reliability state ages out after %d cycles at lockstep barriers and is resurrected (epoch-bumped) by fresh traffic", churnReclaimAge),
		"latency metrics quote the small-pio class: the most numerous class, and the one whose misses defer the FIFO launch itself")
	return res, nil
}
