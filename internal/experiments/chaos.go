package experiments

import (
	"fmt"

	"shrimp/internal/cluster"
	"shrimp/internal/loadgen"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/stats"
	"shrimp/internal/sweep"
)

// ChaosSeed is the default seed for the crash–restart availability
// sweep; shrimpsim's chaos scenario overrides it from the command line.
const ChaosSeed = 0xe17_ab1e

// The chaos workload shape: a modest open-loop load (well under the
// saturation knee, so availability dips are attributable to outages
// rather than queueing) with the reliability layer tuned to fail fast —
// peers of a dead node reach the retry cap well inside one MTTR, the
// message fails typed, and the flow resumes on the next epoch after
// the reboot.
const (
	chaosNodes       = 4
	chaosMessages    = 500
	chaosRate        = 150
	chaosRetxTimeout = 6_000
	chaosRelRetries  = 3
	chaosMTBF        = 800_000
	chaosFirstAt     = 200_000
)

// chaosPoint is one cell of the crash-schedule grid: a crash budget and
// a repair time. Zero crashes is the clean baseline; "late" arms the
// plan past the trial's span and must fingerprint identically to it.
type chaosPoint struct {
	label   string
	crashes int        // MaxCrashes (0 with mtbf 0 = no plan)
	mttr    sim.Cycles // repair time; 0 = plan disabled
	late    bool       // armed but first crash beyond the run
}

var chaosPoints = []chaosPoint{
	{label: "none"},
	{label: "late", late: true},
	{label: "c1-m100k", crashes: 1, mttr: 100_000},
	{label: "c1-m400k", crashes: 1, mttr: 400_000},
	{label: "c2-m100k", crashes: 2, mttr: 100_000},
	{label: "c2-m400k", crashes: 2, mttr: 400_000},
}

func chaosTrial(seed uint64, pt chaosPoint, workers int) (*loadgen.Result, error) {
	tc := loadgen.TrialConfig{
		Config: loadgen.Config{
			Nodes:    chaosNodes,
			Seed:     seed,
			Rate:     chaosRate,
			Messages: chaosMessages,
		},
		Workers:       workers,
		RetxTimeout:   chaosRetxTimeout,
		RelMaxRetries: chaosRelRetries,
	}
	switch {
	case pt.late:
		tc.Crash = cluster.CrashPlan{Seed: seed, MTBF: chaosMTBF,
			FirstAt: sim.Cycles(1) << 50}
	case pt.crashes > 0:
		tc.Crash = cluster.CrashPlan{Seed: seed, MTBF: chaosMTBF,
			MTTR: pt.mttr, FirstAt: chaosFirstAt, MaxCrashes: pt.crashes}
	}
	res, err := loadgen.RunTrial(tc)
	if err != nil {
		return nil, fmt.Errorf("chaos point %s: %w", pt.label, err)
	}
	return res, nil
}

// RunChaos is E17: node crash–restart chaos vs availability SLOs. The
// open-loop serving workload runs under a seeded whole-node
// crash–restart schedule (cluster.CrashPlan), sweeping the crash budget
// and the repair time, and reads back goodput, typed delivery failures,
// downtime, and the per-crash availability signature — dip depth and
// time-to-recover out of the delivery time series.
func RunChaos() (*Result, error) {
	return RunChaosSeeded(ChaosSeed)
}

// RunChaosSeeded is RunChaos under a caller-chosen seed.
func RunChaosSeeded(seed uint64) (*Result, error) {
	res := &Result{
		ID:    "e17",
		Title: "Extension: crash–restart chaos — availability dips and time-to-recover",
		Paper: "the paper's reliability story is per-transfer error recovery on a live node; datacenter availability adds whole-node crash–restart, which the epoch-bumped reliability state and host-memory NIPT backing make survivable",
	}
	costs := machine.SHRIMP1996()
	us := func(cycles float64) float64 { return costs.Micros(1) * cycles }

	type cell struct {
		res *loadgen.Result
		err error
	}
	outs := sweep.Run(len(chaosPoints), sweepWorkers, func(i int) cell {
		r, err := chaosTrial(seed, chaosPoints[i], 1)
		return cell{r, err}
	})
	trials := make([]*loadgen.Result, len(outs))
	for i, out := range outs {
		if out.err != nil {
			return nil, out.err
		}
		trials[i] = out.res
	}

	tbl := stats.NewTable(
		fmt.Sprintf("Crash–restart chaos (%d msgs, %d nodes, retx %d cyc ×%d retries; dip from the delivery time series)",
			chaosMessages, chaosNodes, chaosRetxTimeout, chaosRelRetries),
		"schedule", "goodput B/Mc", "delivered", "failed", "crashes",
		"downtime cyc", "dip depth", "recover µs")
	goodputSer := &stats.Series{Name: "goodput vs crash schedule",
		XLabel: "schedule point (0=none)", YLabel: "goodput B/Mcycle"}
	accounted, recovered := true, true
	maxDepth := 0.0
	for i, r := range trials {
		pt := chaosPoints[i]
		if r.Delivered+r.Failed != r.Messages {
			accounted = false
		}
		// Deepest dip and latest recovery across the point's outages.
		depth, recover := 0.0, sim.Cycles(0)
		for _, d := range r.Dips {
			if d.Depth > depth {
				depth = d.Depth
			}
			if d.RecoverAt > recover {
				recover = d.RecoverAt
			}
			// A dip that never recovered is only tolerable when the
			// outage began after the last delivery (nothing left to
			// recover); mid-load outages must come back.
			if d.RecoverAt == 0 && r.Delivered > 0 && d.DownAt < r.Elapsed {
				recovered = false
			}
		}
		if depth > maxDepth {
			maxDepth = depth
		}
		tbl.AddRow(pt.label,
			fmt.Sprintf("%.0f", r.Goodput()),
			fmt.Sprintf("%d", r.Delivered),
			fmt.Sprintf("%d", r.Failed),
			fmt.Sprintf("%d", r.Crashes),
			fmt.Sprintf("%d", r.DowntimeCycles),
			fmt.Sprintf("%.2f", depth),
			fmt.Sprintf("%.1f", us(float64(recover))))
		goodputSer.Add(float64(i), r.Goodput())

		res.metric(metricKey("sched", pt.label, "goodput_bpmc"), r.Goodput())
		res.metric(metricKey("sched", pt.label, "failed"), float64(r.Failed))
		res.metric(metricKey("sched", pt.label, "crashes"), float64(r.Crashes))
		res.metric(metricKey("sched", pt.label, "downtime_cycles"), float64(r.DowntimeCycles))
		res.metric(metricKey("sched", pt.label, "dip_depth"), depth)
		res.metric(metricKey("sched", pt.label, "recover_us"), us(float64(recover)))
	}
	res.Tables = append(res.Tables, tbl)
	res.Series = append(res.Series, goodputSer)

	none, late := trials[0], trials[1]
	res.check("every message delivered or failed typed at every schedule", accounted, "")
	res.check("the clean baseline fails nothing", none.Failed == 0,
		"%d failures with no crash plan", none.Failed)
	res.check("a plan armed past the run is bit-identical to no plan",
		late.Crashes == 0 && none.Fingerprint() == late.Fingerprint(),
		"late fired %d crashes; %016x vs %016x", late.Crashes, none.Fingerprint(), late.Fingerprint())

	for i, r := range trials {
		pt := chaosPoints[i]
		if pt.crashes == 0 {
			continue
		}
		res.check(fmt.Sprintf("schedule %s fired its full crash budget", pt.label),
			int(r.Crashes) == pt.crashes, "%d of %d crashes", r.Crashes, pt.crashes)
		res.check(fmt.Sprintf("schedule %s respawned every rebooted node", pt.label),
			r.Respawns == int(r.Crashes) && r.DowntimeCycles > 0,
			"%d respawns for %d crashes, %d cycles down", r.Respawns, r.Crashes, r.DowntimeCycles)
	}
	res.check("goodput visibly dipped during at least one outage", maxDepth > 0,
		"max dip depth %.2f", maxDepth)
	res.check("every mid-load outage recovered (deliveries resumed after reboot)",
		recovered, "")

	// Longer repairs cost more downtime under the same crash budget.
	m100, m400 := trials[4], trials[5]
	res.check("quadrupling MTTR increases downtime under the same crash budget",
		m400.DowntimeCycles > m100.DowntimeCycles,
		"%d vs %d cycles down", m100.DowntimeCycles, m400.DowntimeCycles)

	// Determinism: the heaviest schedule re-run bit-exactly, serially and
	// on four workers.
	heavy := trials[4]
	again, err := chaosTrial(seed, chaosPoints[4], 1)
	if err != nil {
		return nil, err
	}
	wide, err := chaosTrial(seed, chaosPoints[4], 4)
	if err != nil {
		return nil, err
	}
	res.check("same seed reproduces the chaos trial exactly",
		heavy.Fingerprint() == again.Fingerprint(),
		"%016x vs %016x", heavy.Fingerprint(), again.Fingerprint())
	res.check("workers 1 and 4 produce identical chaos trials",
		heavy.Fingerprint() == wide.Fingerprint(),
		"%016x vs %016x", heavy.Fingerprint(), wide.Fingerprint())

	res.Notes = append(res.Notes,
		fmt.Sprintf("seed %#x; crashes drawn exp(MTBF=%d) from %d, applied at lockstep barriers", seed, chaosMTBF, chaosFirstAt),
		"a crash wipes the board (NIPT cache, reliability state, FIFOs, in-flight DMA) and machine-checks the kernel; the reboot rebuilds the NIPT from the host-memory table and resumes flows epoch-bumped",
		fmt.Sprintf("peers fail fast: retx %d cycles × %d retries puts the typed DeliveryError well inside one MTTR", chaosRetxTimeout, chaosRelRetries),
		"dip depth is 1 − min bucket delivery rate / trial mean; recover is the end of the first delivering bucket after the reboot")
	return res, nil
}
