module shrimp

go 1.22
