package shrimp_test

// One benchmark per reproduced table/figure (the E1–E10 index in
// DESIGN.md). Each benchmark runs real simulated work per iteration
// and reports the *simulated* time and bandwidth as custom metrics
// (sim-us/op, sim-MB/s) alongside Go's wall-clock ns/op — the simulated
// numbers are the ones that correspond to the paper.

import (
	"fmt"
	"testing"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/experiments"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

// BenchmarkFig8Bandwidth regenerates Figure 8: deliberate-update
// bandwidth per message size on the two-node SHRIMP pair.
func BenchmarkFig8Bandwidth(b *testing.B) {
	for _, size := range []int{512, 1024, 4096, 8192, 65536} {
		size := size
		b.Run(fmt.Sprintf("msg=%d", size), func(b *testing.B) {
			c := cluster.New(cluster.Config{
				Nodes:   2,
				Machine: machine.Config{RAMFrames: 128},
				NIC:     nic.Config{NIPTPages: 64},
			})
			defer c.Shutdown()
			pfns := make([]uint32, 16)
			for i := range pfns {
				pfns[i] = uint32(32 + i)
			}
			if err := udmalib.MapSendWindow(c.NICs[0], 0, 1, pfns); err != nil {
				b.Fatal(err)
			}
			var elapsed sim.Cycles
			var sendErr error
			c.Nodes[0].Kernel.Spawn("sender", func(p *kernel.Proc) {
				d, err := udmalib.Open(p, c.NICs[0], true)
				if err != nil {
					sendErr = err
					return
				}
				va, _ := p.Alloc(16 * 4096)
				p.WriteBuf(va, workload.Payload(size, 1))
				if sendErr = d.Send(va, 0, size); sendErr != nil {
					return // warm-up
				}
				start := p.Now()
				for i := 0; i < b.N; i++ {
					if sendErr = d.Send(va, 0, size); sendErr != nil {
						return
					}
				}
				elapsed = p.Now() - start
			})
			b.ResetTimer()
			if err := c.Nodes[0].Kernel.Run(sim.Forever); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if sendErr != nil {
				b.Fatal(sendErr)
			}
			costs := c.Nodes[0].Costs
			b.ReportMetric(costs.Micros(elapsed)/float64(b.N), "sim-us/op")
			b.ReportMetric(float64(size*b.N)/costs.Seconds(elapsed)/1e6, "sim-MB/s")
		})
	}
}

// BenchmarkInitiationCost regenerates the Section 8 scalar: the
// two-instruction initiation sequence plus alignment check (≈2.8 µs).
func BenchmarkInitiationCost(b *testing.B) {
	n := machine.New(0, machine.Config{})
	buf := device.NewBuffer("buf", 16, 4, 0)
	n.AttachDevice(buf, 0)
	defer n.Kernel.Shutdown()

	var elapsed sim.Cycles
	var runErr error
	check := udmalib.DefaultTunables().CheckCycles
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		devVA, err := p.MapDevice(buf, true)
		if err != nil {
			runErr = err
			return
		}
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, workload.Payload(64, 1))
		src := addr.VProxy(va)
		// Warm-up.
		p.Store(devVA, 64)
		p.Load(src)
		for {
			v, _ := p.Load(src)
			if !core.Status(v).Match() && !core.Status(v).Transferring() {
				break
			}
		}
		var total sim.Cycles
		for i := 0; i < b.N; i++ {
			start := p.Now()
			p.Compute(check)
			p.Store(devVA, 64)
			v, err := p.Load(src)
			if err != nil {
				runErr = err
				return
			}
			total += p.Now() - start
			if !core.Status(v).Initiated() {
				runErr = fmt.Errorf("initiation failed: %v", core.Status(v))
				return
			}
			for {
				v, _ := p.Load(src)
				if !core.Status(v).Match() && !core.Status(v).Transferring() {
					break
				}
			}
		}
		elapsed = total
	})
	b.ResetTimer()
	if err := n.Kernel.Run(sim.Forever); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if runErr != nil {
		b.Fatal(runErr)
	}
	b.ReportMetric(n.Costs.Micros(elapsed)/float64(b.N), "sim-us/op")
}

// BenchmarkTraditionalDMAOverhead regenerates the Section 1 HIPPI
// table: kernel-initiated DMA on a 100 MB/s channel.
func BenchmarkTraditionalDMAOverhead(b *testing.B) {
	for _, size := range []int{1024, 65536, 262144} {
		size := size
		b.Run(fmt.Sprintf("block=%d", size), func(b *testing.B) {
			benchKernelDMA(b, size, true)
		})
	}
}

// BenchmarkInitiationComparison regenerates the Sections 2–3 breakdown
// table on the SHRIMP model: kernel DMA (pinned) for 1 KB.
func BenchmarkInitiationComparison(b *testing.B) {
	b.Run("udma", func(b *testing.B) { BenchmarkInitiationCost(b) })
	b.Run("kernel-pinned", func(b *testing.B) { benchKernelDMA(b, 1024, false) })
}

func benchKernelDMA(b *testing.B, size int, hippi bool) {
	cfg := machine.Config{RAMFrames: size/4096 + 64, NoUDMA: true}
	if hippi {
		m := machine.SHRIMP1996()
		m.DMABytesPerCyc = 100e6 / m.CPUHz
		m.SyscallEntry, m.SyscallExit, m.InterruptEntry = 12000, 4000, 5000
		m.PinPage, m.UnpinPage, m.TranslatePage, m.BuildDescPage = 120, 80, 60, 30
		m.DMAStartup = 100
		cfg.Costs = m
	}
	n := machine.New(0, cfg)
	dev := device.NewBuffer("ch", uint32(size/4096+2), 4, 0)
	n.AttachDevice(dev, 0)
	defer n.Kernel.Shutdown()

	var elapsed sim.Cycles
	var runErr error
	n.Kernel.Spawn("p", func(p *kernel.Proc) {
		va, _ := p.Alloc(size)
		p.WriteBuf(va, workload.Payload(size, 2))
		if runErr = p.DMAWrite(va, addr.DevProxy(0, 0), size, kernel.DMAOptions{}); runErr != nil {
			return
		}
		start := p.Now()
		for i := 0; i < b.N; i++ {
			if runErr = p.DMAWrite(va, addr.DevProxy(0, 0), size, kernel.DMAOptions{}); runErr != nil {
				return
			}
		}
		elapsed = p.Now() - start
	})
	b.ResetTimer()
	if err := n.Kernel.Run(sim.Forever); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if runErr != nil {
		b.Fatal(runErr)
	}
	b.ReportMetric(n.Costs.Micros(elapsed)/float64(b.N), "sim-us/op")
	b.ReportMetric(float64(size*b.N)/n.Costs.Seconds(elapsed)/1e6, "sim-MB/s")
}

// BenchmarkPIOvsUDMA regenerates the Section 9 comparison rows: per-op
// cost of pushing one message through the memory-mapped FIFO vs UDMA.
func BenchmarkPIOvsUDMA(b *testing.B) {
	for _, mode := range []string{"pio", "udma"} {
		for _, size := range []int{64, 1024, 4096} {
			mode, size := mode, size
			b.Run(fmt.Sprintf("%s/msg=%d", mode, size), func(b *testing.B) {
				benchNICSend(b, size, mode == "pio")
			})
		}
	}
}

func benchNICSend(b *testing.B, size int, pio bool) {
	c := cluster.New(cluster.Config{
		Nodes:   2,
		Machine: machine.Config{RAMFrames: 64},
		NIC:     nic.Config{NIPTPages: 16, PIOWindow: true},
	})
	defer c.Shutdown()
	if err := udmalib.MapSendWindow(c.NICs[0], 0, 1, []uint32{40}); err != nil {
		b.Fatal(err)
	}
	var elapsed sim.Cycles
	var runErr error
	c.Nodes[0].Kernel.Spawn("sender", func(p *kernel.Proc) {
		d, err := udmalib.Open(p, c.NICs[0], true)
		if err != nil {
			runErr = err
			return
		}
		va, _ := p.Alloc(4096)
		p.WriteBuf(va, workload.Payload(size, 3))
		pioBase := d.Base() + addr.VAddr(uint32(c.NICs[0].NIPTSize())<<addr.PageShift)
		data, _ := p.ReadBuf(va, size)
		send := func() error {
			if pio {
				if err := p.Store(pioBase+nic.PIORegDest, 0); err != nil {
					return err
				}
				for i := 0; i+4 <= len(data); i += 4 {
					w := uint32(data[i]) | uint32(data[i+1])<<8 |
						uint32(data[i+2])<<16 | uint32(data[i+3])<<24
					if err := p.Store(pioBase+nic.PIORegData, w); err != nil {
						return err
					}
				}
				return p.Store(pioBase+nic.PIORegLaunch, 0)
			}
			return d.Send(va, 0, size)
		}
		if runErr = send(); runErr != nil {
			return
		}
		start := p.Now()
		for i := 0; i < b.N; i++ {
			if runErr = send(); runErr != nil {
				return
			}
		}
		elapsed = p.Now() - start
	})
	b.ResetTimer()
	if err := c.Nodes[0].Kernel.Run(sim.Forever); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if runErr != nil {
		b.Fatal(runErr)
	}
	costs := c.Nodes[0].Costs
	b.ReportMetric(costs.Micros(elapsed)/float64(b.N), "sim-us/op")
	b.ReportMetric(float64(size*b.N)/costs.Seconds(elapsed)/1e6, "sim-MB/s")
}

// BenchmarkMultiPageQueueing regenerates the Section 7 table: serial vs
// queued multi-page sends.
func BenchmarkMultiPageQueueing(b *testing.B) {
	for _, depth := range []int{0, 8} {
		depth := depth
		b.Run(fmt.Sprintf("depth=%d/msg=32768", depth), func(b *testing.B) {
			n := machine.New(0, machine.Config{
				RAMFrames: 96,
				UDMA:      core.Config{QueueDepth: depth},
			})
			buf := device.NewBuffer("buf", 12, 4, 0)
			n.AttachDevice(buf, 0)
			defer n.Kernel.Shutdown()
			const size = 32768
			var elapsed sim.Cycles
			var runErr error
			n.Kernel.Spawn("p", func(p *kernel.Proc) {
				d, _ := udmalib.Open(p, buf, true)
				va, _ := p.Alloc(size)
				p.WriteBuf(va, workload.Payload(size, 4))
				send := func() error {
					if depth > 0 {
						return d.QueuedSend(va, 0, size)
					}
					return d.Send(va, 0, size)
				}
				if runErr = send(); runErr != nil {
					return
				}
				start := p.Now()
				for i := 0; i < b.N; i++ {
					if runErr = send(); runErr != nil {
						return
					}
				}
				elapsed = p.Now() - start
			})
			b.ResetTimer()
			if err := n.Kernel.Run(sim.Forever); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if runErr != nil {
				b.Fatal(runErr)
			}
			b.ReportMetric(n.Costs.Micros(elapsed)/float64(b.N), "sim-us/op")
			b.ReportMetric(float64(size*b.N)/n.Costs.Seconds(elapsed)/1e6, "sim-MB/s")
		})
	}
}

// The remaining experiments involve whole-machine interactions
// (multi-process scheduling, paging pressure, 4-node clusters) that do
// not decompose into a per-iteration op; their benchmarks run the full
// experiment per iteration and report whether its shape checks held.
func benchExperiment(b *testing.B, id string) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			for _, c := range res.Checks {
				if !c.Pass {
					b.Fatalf("%s: %s — %s", id, c.Name, c.Detail)
				}
			}
		}
	}
}

// BenchmarkContextSwitchInval regenerates the Section 6 / I1 table.
func BenchmarkContextSwitchInval(b *testing.B) { benchExperiment(b, "e7") }

// BenchmarkPinningVsRemapGuard regenerates the Section 6 / I4 table.
func BenchmarkPinningVsRemapGuard(b *testing.B) { benchExperiment(b, "e8") }

// BenchmarkNIPTTranslation regenerates the Section 8 NIPT table.
func BenchmarkNIPTTranslation(b *testing.B) { benchExperiment(b, "e9") }

// BenchmarkFourNodePrototype regenerates the Section 8 prototype table.
func BenchmarkFourNodePrototype(b *testing.B) { benchExperiment(b, "e10") }

// BenchmarkAutoVsDeliberate regenerates the extension table comparing
// SHRIMP's two transfer strategies (e11).
func BenchmarkAutoVsDeliberate(b *testing.B) { benchExperiment(b, "e11") }
