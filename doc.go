// Package shrimp is a full-system reproduction of
//
//	M. Blumrich, C. Dubnicki, E. W. Felten, K. Li.
//	"Protected, User-Level DMA for the SHRIMP Network Interface."
//	2nd International Symposium on High-Performance Computer
//	Architecture (HPCA), February 1996.
//
// Because the UDMA mechanism lives at the MMU/DMA-hardware level, the
// repository implements the machine itself as a deterministic
// cycle-cost simulator in pure Go, then builds the paper's mechanism,
// operating-system support, SHRIMP network interface and evaluation on
// top of it.
//
// Layout (see DESIGN.md for the full inventory and EXPERIMENTS.md for
// paper-vs-measured results):
//
//	internal/core        the UDMA state machine, proxy translation,
//	                     status word and request queue — the paper's
//	                     contribution
//	internal/{sim,mem,mmu,bus,dma,device}
//	                     the hardware substrate
//	internal/kernel      scheduler, demand paging, invariants I1–I4,
//	                     traditional-DMA baseline syscalls
//	internal/{nic,interconnect,cluster}
//	                     the SHRIMP network interface and multicomputer
//	internal/udmalib     the user-level library (send/recv/gather)
//	internal/experiments one driver per reproduced table/figure
//	cmd/udmabench        regenerates the paper's evaluation
//	cmd/shrimpsim        interactive scenarios
//	examples/            quickstart, messaging, framebuffer, diskio
//
// The benchmarks in bench_test.go wrap the experiment drivers so
// `go test -bench=.` regenerates every table and figure.
package shrimp
