// Quickstart: the UDMA mechanism in its smallest form.
//
// A single simulated node, one buffer device, one user process. The
// process first performs the paper's two-instruction initiation
// sequence by hand —
//
//	STORE nbytes TO PROXY(destAddr)
//	LOAD  status FROM PROXY(srcAddr)
//
// — and then does the same through the udmalib user library, which adds
// the retry protocol, page-boundary splitting and completion polling.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
)

func main() {
	// A SHRIMP-like node: 60 MHz CPU, MMU+TLB, EISA bus, DMA engine
	// with the UDMA extension, demand-paged kernel.
	node := machine.New(0, machine.Config{})
	defer node.Kernel.Shutdown()

	// A 16-page buffer device (think: memory-mapped I/O card) at
	// device-proxy page 0.
	buf := device.NewBuffer("card0", 16, 4, 0)
	node.AttachDevice(buf, 0)

	var runErr error
	node.Kernel.Spawn("quickstart", func(p *kernel.Proc) {
		runErr = run(p, buf)
	})
	if err := node.Kernel.Run(sim.Forever); err != nil {
		log.Fatal(err)
	}
	if runErr != nil {
		log.Fatal(runErr)
	}

	fmt.Printf("\ndevice now holds: %q / %q\n",
		buf.Bytes(0, 28), buf.Bytes(256, 28))
	fmt.Printf("UDMA controller stats: %+v\n", node.UDMA.Stats())
}

func run(p *kernel.Proc, buf *device.Buffer) error {
	// 1. Map the device's proxy pages (one system call — the only
	//    kernel involvement, ever).
	devVA, err := p.MapDevice(buf, true)
	if err != nil {
		return err
	}

	// 2. Some user memory with a message in it.
	src, err := p.Alloc(4096)
	if err != nil {
		return err
	}
	// The card requires 4-byte alignment (like the SHRIMP NIC), so the
	// message length is a multiple of 4.
	msg := []byte("two ordinary instructions...")
	if err := p.WriteBuf(src, msg); err != nil {
		return err
	}

	// 3. The raw two-instruction sequence.
	fmt.Println("raw sequence:")
	fmt.Printf("  STORE %d TO dev-proxy %#x\n", len(msg), uint32(devVA))
	if err := p.Store(devVA, uint32(len(msg))); err != nil {
		return err
	}
	srcProxy := addr.VProxy(src) // PROXY(src): the memory-proxy alias
	fmt.Printf("  LOAD status FROM mem-proxy %#x\n", uint32(srcProxy))
	v, err := p.Load(srcProxy)
	if err != nil {
		return err
	}
	st := core.Status(v)
	fmt.Printf("  status: %v\n", st)
	if !st.Initiated() {
		return fmt.Errorf("initiation failed: %v", st)
	}
	// Completion idiom: repeat the LOAD until MATCH clears.
	polls := 0
	for {
		v, err := p.Load(srcProxy)
		if err != nil {
			return err
		}
		if !core.Status(v).Match() {
			break
		}
		polls++
	}
	fmt.Printf("  transfer complete after %d status polls at t=%.1f µs\n",
		polls, p.Micros(p.Now()))

	// 4. The same through the user library (what applications use).
	d, err := udmalib.Open(p, buf, true)
	if err != nil {
		return err
	}
	msg2 := []byte("...plus a small user library")
	if err := p.WriteBuf(src, msg2); err != nil {
		return err
	}
	start := p.Now()
	if err := d.Send(src, 256, len(msg2)); err != nil {
		return err
	}
	fmt.Printf("library send: %d bytes in %.1f µs\n", len(msg2),
		p.Micros(p.Now()-start))
	return nil
}
