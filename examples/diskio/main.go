// Diskio: UDMA device→memory transfers from a block device — the
// paper's "data storage devices such as disks and tape drives" example,
// and the direction that exercises the I3 content-consistency
// invariant: naming user memory as a DMA *destination* requires write
// permission on the memory-proxy page, which in turn marks the real
// page dirty so the newly-arrived data survives paging.
//
// The program reads a scattered set of blocks into user memory with
// UDMA while a background process applies paging pressure, then proves
// every byte survived eviction and page-in.
//
// Run with: go run ./examples/diskio
package main

import (
	"bytes"
	"fmt"
	"log"

	"shrimp/internal/addr"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

const (
	diskBlocks = 256
	reads      = 24
	blockBytes = addr.PageSize
)

func main() {
	node := machine.New(0, machine.Config{RAMFrames: 48}) // tight memory
	disk := device.NewDisk("sd0", diskBlocks, 20, 2000)   // seek + rotation model
	node.AttachDevice(disk, 0)
	defer node.Kernel.Shutdown()

	// Preload the disk with recognizable block contents.
	for b := uint32(0); b < diskBlocks; b++ {
		if err := disk.Preload(b, workload.Payload(blockBytes, byte(b))); err != nil {
			log.Fatal(err)
		}
	}

	var readErr error
	var report []string
	node.Kernel.Spawn("reader", func(p *kernel.Proc) {
		readErr = reader(p, disk, &report)
	})
	node.Kernel.Spawn("pager", workload.Pager(56, 80_000_000))

	if err := node.Kernel.Run(sim.Forever); err != nil {
		log.Fatal(err)
	}
	if readErr != nil {
		log.Fatal(readErr)
	}
	for _, line := range report {
		fmt.Println(line)
	}
	ks := node.Kernel.Stats()
	r, w, seeks := disk.Stats()
	fmt.Printf("\ndisk: %d reads, %d writes, %d blocks of head travel\n", r, w, seeks)
	fmt.Printf("vm: %d evictions, %d page-ins, %d I3 write-upgrades, %d pins\n",
		ks.Evictions, ks.PageIns, ks.ProxyUpgrades, ks.Pins)
	fmt.Println("every UDMA destination page was dirtied through the proxy write fault (I3), so no arriving block was lost to paging")
}

func reader(p *kernel.Proc, disk *device.Disk, report *[]string) error {
	d, err := udmalib.Open(p, disk, true)
	if err != nil {
		return err
	}
	buf, err := p.Alloc(reads * blockBytes)
	if err != nil {
		return err
	}

	// Read a scattered block list (worst case for the seek model).
	rng := sim.NewRNG(7)
	blockOf := make([]uint32, reads)
	start := p.Now()
	for i := 0; i < reads; i++ {
		blockOf[i] = rng.Uint32n(diskBlocks)
		dst := buf + addr.VAddr(i*blockBytes)
		if err := d.Recv(dst, udmalib.WindowOff(blockOf[i], 0), blockBytes); err != nil {
			return fmt.Errorf("read of block %d: %w", blockOf[i], err)
		}
	}
	elapsed := p.Now() - start
	*report = append(*report, fmt.Sprintf(
		"read %d scattered blocks (%d KB) via UDMA in %.0f µs (%.1f MB/s), zero system calls per read",
		reads, reads*blockBytes/1024, p.Micros(elapsed),
		float64(reads*blockBytes)/p.Micros(elapsed)))

	// Touch lots of memory so some of the read buffer is evicted, then
	// verify every block — the data must round-trip through swap.
	hog, err := p.Alloc(24 * addr.PageSize)
	if err != nil {
		return err
	}
	for i := 0; i < 24; i++ {
		if err := p.Store(hog+addr.VAddr(i*addr.PageSize), uint32(i)); err != nil {
			return err
		}
	}

	bad := 0
	for i := 0; i < reads; i++ {
		got, err := p.ReadBuf(buf+addr.VAddr(i*blockBytes), blockBytes)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, workload.Payload(blockBytes, byte(blockOf[i]))) {
			bad++
		}
	}
	*report = append(*report, fmt.Sprintf(
		"verified %d blocks after paging pressure: %d corrupted", reads, bad))
	if bad > 0 {
		return fmt.Errorf("%d blocks corrupted — I3 failed", bad)
	}
	return nil
}
