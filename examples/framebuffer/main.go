// Framebuffer: UDMA to a memory-mapped graphics device — the paper's
// first example of UDMA's generality beyond network interfaces ("if the
// device is a graphics frame-buffer, a device address might specify a
// pixel").
//
// The program renders animation frames in user memory and blits dirty
// tiles to a 640×480 frame buffer, once through the traditional kernel
// DMA path and once through UDMA, comparing the cost of getting each
// frame on screen. Fine-grained tile updates are exactly the workload
// the paper says traditional DMA overhead ruins.
//
// Run with: go run ./examples/framebuffer
package main

import (
	"fmt"
	"log"

	"shrimp/internal/addr"
	"shrimp/internal/core"
	"shrimp/internal/device"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/sim"
	"shrimp/internal/udmalib"
)

const (
	width   = 640
	height  = 480
	tileDim = 32 // 32×32-pixel tiles
	tiles   = 16 // dirty tiles per frame
	frames  = 8
	tileRow = tileDim * 4 // bytes per tile row
)

func main() {
	udmaUS, err := render(true)
	if err != nil {
		log.Fatal(err)
	}
	kernelUS, err := render(false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d frames × %d dirty tiles of %d×%d pixels:\n", frames, tiles, tileDim, tileDim)
	fmt.Printf("  UDMA blits:        %8.0f µs (%.1f µs/tile)\n",
		udmaUS, udmaUS/float64(frames*tiles))
	fmt.Printf("  kernel DMA blits:  %8.0f µs (%.1f µs/tile)\n",
		kernelUS, kernelUS/float64(frames*tiles))
	fmt.Printf("  speedup:           %8.1fx\n", kernelUS/udmaUS)
	fmt.Println("\nfine-grained device transfers are exactly where kernel-initiated DMA drowns in overhead")
}

func render(udma bool) (float64, error) {
	// The UDMA controller gets the Section 7 request queue, so a whole
	// tile (32 non-contiguous rows) goes out as one gather transfer.
	node := machine.New(0, machine.Config{
		RAMFrames: 512,
		UDMA:      core.Config{QueueDepth: 16},
	})
	fb := device.NewFrameBuffer("fb0", width, height, 0)
	node.AttachDevice(fb, 0)
	defer node.Kernel.Shutdown()

	var elapsed sim.Cycles
	var runErr error
	node.Kernel.Spawn("renderer", func(p *kernel.Proc) {
		var d *udmalib.Dev
		var err error
		if udma {
			d, err = udmalib.Open(p, fb, true)
		} else {
			_, err = p.MapDevice(fb, true)
		}
		if err != nil {
			runErr = err
			return
		}

		// Back buffer: one tile row's worth of pixels per blit. A tile
		// is 32 rows; each row is a contiguous run in the frame buffer.
		tile, err := p.Alloc(tileDim * tileDim * 4)
		if err != nil {
			runErr = err
			return
		}

		rng := sim.NewRNG(99)
		start := p.Now()
		for f := 0; f < frames; f++ {
			for t := 0; t < tiles; t++ {
				// "Render": fill the tile with a frame-dependent color.
				px := make([]byte, tileDim*tileDim*4)
				for i := 0; i < len(px); i += 4 {
					px[i] = byte(f * 16)
					px[i+1] = byte(t * 8)
					px[i+2] = 0x80
					px[i+3] = 0xFF
				}
				if err := p.WriteBuf(tile, px); err != nil {
					runErr = err
					return
				}
				// Blit: each tile row is a contiguous device range; the
				// tile as a whole is a gather-scatter transfer.
				tx := int(rng.Uint32n(width/tileDim)) * tileDim
				ty := int(rng.Uint32n(height/tileDim)) * tileDim
				if udma {
					segs := make([]udmalib.Segment, tileDim)
					for row := 0; row < tileDim; row++ {
						segs[row] = udmalib.Segment{
							VA:     tile + addr.VAddr(row*tileRow),
							DevOff: fb.PixelOff(tx, ty+row),
							N:      tileRow,
						}
					}
					err = d.SendGather(segs)
				} else {
					for row := 0; row < tileDim; row++ {
						off := fb.PixelOff(tx, ty+row)
						srcRow := tile + addr.VAddr(row*tileRow)
						err = p.DMAWrite(srcRow, addr.DevProxy(off>>addr.PageShift, off&addr.OffsetMask),
							tileRow, kernel.DMAOptions{})
						if err != nil {
							break
						}
					}
				}
				if err != nil {
					runErr = err
					return
				}
			}
		}
		elapsed = p.Now() - start

		// Verify the last tile actually landed.
		if got := fb.Pixel(0, 0); got == 0 {
			// Pixel (0,0) may legitimately be untouched; just ensure
			// the device saw traffic.
			w, _ := fb.Stats()
			if w == 0 {
				runErr = fmt.Errorf("no blits reached the frame buffer")
			}
		}
	})
	if err := node.Kernel.Run(sim.Forever); err != nil {
		return 0, err
	}
	if runErr != nil {
		return 0, runErr
	}
	return node.Micros(elapsed), nil
}
