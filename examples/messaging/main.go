// Messaging: user-level message passing on a four-node SHRIMP
// multicomputer — the workload the paper's introduction motivates.
//
// Each node exports a receive buffer (one slot per peer), the mapping
// master installs everyone's NIPT windows, and then every node sends a
// message to every other node with plain UDMA deliberate updates. The
// receivers poll their own memory: arrival needs no receiver CPU, no
// interrupt, and no kernel on either side.
//
// Run with: go run ./examples/messaging
package main

import (
	"fmt"
	"log"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/udmalib"
	"shrimp/internal/workload"
)

const (
	nodes    = 4
	msgBytes = 8192 // two pages: exercises the page-split path
)

func main() {
	c := cluster.New(cluster.Config{
		Nodes:   nodes,
		Machine: machine.Config{RAMFrames: 128},
		NIC:     nic.Config{NIPTPages: 64},
	})
	defer c.Shutdown()

	exports := make(chan export, nodes)
	errs := make([]error, nodes)
	received := make([][]string, nodes)

	for i := 0; i < nodes; i++ {
		i := i
		c.Nodes[i].Kernel.Spawn(fmt.Sprintf("peer%d", i), func(p *kernel.Proc) {
			errs[i] = peer(c, p, i, exports, &received[i])
		})
	}
	if err := c.Run(5_000_000_000); err != nil {
		log.Fatal(err)
	}
	for i, err := range errs {
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
	}
	for i := 0; i < nodes; i++ {
		fmt.Printf("node %d received:\n", i)
		for _, m := range received[i] {
			fmt.Printf("  %s\n", m)
		}
	}
	var sent uint64
	for _, n := range c.NICs {
		sent += n.Stats().BytesSent
	}
	fmt.Printf("\ntotal: %d bytes moved in %d packets, zero kernel involvement per message\n",
		sent, totalPackets(c))
}

// export carries one node's pinned receive frames to the mapping
// master (an out-of-band control plane, like SHRIMP's mapping daemon).
type export struct {
	node int
	pfns []uint32
}

func peer(c *cluster.Cluster, p *kernel.Proc, me int,
	exports chan export, out *[]string) error {

	pagesPerSlot := msgBytes / addr.PageSize

	// Export: one msgBytes slot per peer, pinned for incoming updates.
	recvVA, err := p.Alloc(nodes * msgBytes)
	if err != nil {
		return err
	}
	pfns, err := udmalib.ExportBuffer(c.Nodes[me].Kernel, p, recvVA, nodes*pagesPerSlot)
	if err != nil {
		return err
	}
	exports <- export{me, pfns}

	// Node 0 collects every export and installs every sender's NIPT:
	// sender s's window entries for destination d start at entry
	// d*pagesPerSlot and point at slot s on node d.
	if me == 0 {
		all := make([][]uint32, nodes)
		for got := 0; got < nodes; got++ {
			e := waitChan(p, exports)
			all[e.node] = e.pfns
		}
		for s := 0; s < nodes; s++ {
			for d := 0; d < nodes; d++ {
				if s == d {
					continue
				}
				for pg := 0; pg < pagesPerSlot; pg++ {
					err := c.NICs[s].SetNIPT(uint32(d*pagesPerSlot+pg), nic.NIPTEntry{
						Valid:    true,
						DestNode: d,
						DestPFN:  all[d][s*pagesPerSlot+pg],
					})
					if err != nil {
						return err
					}
				}
			}
		}
	}

	// Send a page-spanning message to every peer (retrying until the
	// master has installed our window).
	dev, err := udmalib.Open(p, c.NICs[me], true)
	if err != nil {
		return err
	}
	srcVA, err := p.Alloc(msgBytes)
	if err != nil {
		return err
	}
	if err := p.WriteBuf(srcVA, workload.Payload(msgBytes, byte(0x10*me+1))); err != nil {
		return err
	}
	for d := 0; d < nodes; d++ {
		if d == me {
			continue
		}
		for {
			err := dev.Send(srcVA, udmalib.WindowOff(uint32(d*pagesPerSlot), 0), msgBytes)
			if err == nil {
				break
			}
			if _, hard := err.(*udmalib.HardError); hard {
				p.Sleep(10_000) // window not mapped yet
				continue
			}
			return err
		}
	}

	// Receive: poll each slot's last word, verify the payload.
	for s := 0; s < nodes; s++ {
		if s == me {
			continue
		}
		slot := recvVA + addr.VAddr(s*msgBytes)
		for {
			v, err := p.Load(slot + msgBytes - 4)
			if err != nil {
				return err
			}
			if v != 0 {
				break
			}
			p.Compute(500)
		}
		data, err := p.ReadBuf(slot, msgBytes)
		if err != nil {
			return err
		}
		want := workload.Payload(msgBytes, byte(0x10*s+1))
		ok := true
		for j := range want {
			if data[j] != want[j] {
				ok = false
				break
			}
		}
		*out = append(*out, fmt.Sprintf(
			"%d bytes from node %d at t=%.0f µs (intact: %v)",
			msgBytes, s, p.Micros(p.Now()), ok))
	}
	return nil
}

func waitChan[T any](p *kernel.Proc, ch chan T) T {
	for {
		select {
		case v := <-ch:
			return v
		default:
			p.Sleep(5_000)
		}
	}
}

func totalPackets(c *cluster.Cluster) uint64 {
	var n uint64
	for _, iface := range c.NICs {
		n += iface.Stats().PacketsSent
	}
	return n
}
