// Pingpong: round-trip latency between two SHRIMP nodes, the classic
// microbenchmark for user-level communication systems. Each side
// exports one page; ping writes a sequence number into pong's page with
// a deliberate update, pong polls its own memory, sees it, and answers
// into ping's page — no kernel, no interrupts, no receiver-side DMA
// setup anywhere on the critical path.
//
// Run with: go run ./examples/pingpong
package main

import (
	"fmt"
	"log"

	"shrimp/internal/addr"
	"shrimp/internal/cluster"
	"shrimp/internal/kernel"
	"shrimp/internal/machine"
	"shrimp/internal/nic"
	"shrimp/internal/udmalib"
)

const rounds = 32

func main() {
	c := cluster.New(cluster.Config{
		Nodes:   2,
		Machine: machine.Config{RAMFrames: 64},
		NIC:     nic.Config{NIPTPages: 8},
		// Tight lockstep window: the two sides genuinely take turns,
		// so cross-node causality slack should be small against the
		// measured round-trip.
		Window: 200,
	})
	defer c.Shutdown()

	exports := make(chan export, 2)
	var rttUS float64
	var pingErr, pongErr error

	c.Nodes[0].Kernel.Spawn("ping", func(p *kernel.Proc) {
		rttUS, pingErr = ping(c, p, exports)
	})
	c.Nodes[1].Kernel.Spawn("pong", func(p *kernel.Proc) {
		pongErr = pong(c, p, exports)
	})
	if err := c.Run(10_000_000_000); err != nil {
		log.Fatal(err)
	}
	if pingErr != nil {
		log.Fatalf("ping: %v", pingErr)
	}
	if pongErr != nil {
		log.Fatalf("pong: %v", pongErr)
	}
	fmt.Printf("%d word-message round trips: average RTT %.1f µs (%.1f µs one-way)\n",
		rounds, rttUS, rttUS/2)
	fmt.Println("critical path per direction: 2-instruction initiation + EISA burst + backplane flight + receive DMA + poll detection")
}

type export struct {
	node int
	pfn  uint32
}

// setup allocates and exports one page, then installs the peer's frame
// in NIPT entry 0 once the peer has exported too.
func setup(c *cluster.Cluster, p *kernel.Proc, me int, exports chan export) (mine addr.VAddr, dev *udmalib.Dev, err error) {
	va, err := p.Alloc(addr.PageSize)
	if err != nil {
		return 0, nil, err
	}
	pfns, err := udmalib.ExportBuffer(c.Nodes[me].Kernel, p, va, 1)
	if err != nil {
		return 0, nil, err
	}
	exports <- export{me, pfns[0]}
	// Wait for the peer's export (poll with simulated sleeps; never
	// block the coroutine on a bare channel).
	var peer export
	for got := false; !got; {
		select {
		case e := <-exports:
			if e.node == me {
				exports <- e // not ours; put it back
				p.Sleep(1_000)
			} else {
				peer = e
				got = true
			}
		default:
			p.Sleep(1_000)
		}
	}
	if err := udmalib.MapSendWindow(c.NICs[me], 0, peer.node, []uint32{peer.pfn}); err != nil {
		return 0, nil, err
	}
	dev, err = udmalib.Open(p, c.NICs[me], true)
	return va, dev, err
}

func ping(c *cluster.Cluster, p *kernel.Proc, exports chan export) (float64, error) {
	mine, dev, err := setup(c, p, 0, exports)
	if err != nil {
		return 0, err
	}
	src, _ := p.Alloc(addr.PageSize)

	start := p.Now()
	for seq := uint32(1); seq <= rounds; seq++ {
		if err := p.Store(src, seq); err != nil {
			return 0, err
		}
		if err := dev.SendAsync(src, 0, 4); err != nil {
			return 0, err
		}
		// Wait for pong's reply carrying the same sequence number.
		for {
			v, err := p.Load(mine)
			if err != nil {
				return 0, err
			}
			if v == seq {
				break
			}
			p.Compute(50)
		}
	}
	total := p.Now() - start
	return p.Micros(total) / rounds, nil
}

func pong(c *cluster.Cluster, p *kernel.Proc, exports chan export) error {
	mine, dev, err := setup(c, p, 1, exports)
	if err != nil {
		return err
	}
	src, _ := p.Alloc(addr.PageSize)

	for seq := uint32(1); seq <= rounds; seq++ {
		for {
			v, err := p.Load(mine)
			if err != nil {
				return err
			}
			if v == seq {
				break
			}
			p.Compute(50)
		}
		if err := p.Store(src, seq); err != nil {
			return err
		}
		if err := dev.SendAsync(src, 0, 4); err != nil {
			return err
		}
	}
	return nil
}
