GO ?= go
GOFMT ?= gofmt

.PHONY: all build vet fmt test race check bench experiments faults

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out=$$($(GOFMT) -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: everything must compile, vet and gofmt clean,
# and pass the test suite under the race detector.
check: build vet fmt race

# bench runs every experiment and records the machine-readable headline
# metrics (bandwidth, latency percentiles, delivery counts) in
# BENCH_udma.json at the repo root for regression tracking.
bench:
	$(GO) run ./cmd/udmabench -json BENCH_udma.json

experiments:
	$(GO) run ./cmd/udmabench

faults:
	$(GO) run ./cmd/shrimpsim -scenario faults
