GO ?= go
GOFMT ?= gofmt
FUZZTIME ?= 10s

.PHONY: all build vet fmt test race check bench experiments faults lossy serve mesh churn chaos fuzz simcheck cover profile

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out=$$($(GOFMT) -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: everything must compile, vet and gofmt clean,
# and pass the test suite under the race detector.
check: build vet fmt race

# bench runs every experiment and records the machine-readable headline
# metrics (bandwidth, latency percentiles, delivery counts) in
# BENCH_udma.json at the repo root for regression tracking.
bench:
	$(GO) run ./cmd/udmabench -json BENCH_udma.json

experiments:
	$(GO) run ./cmd/udmabench

# profile captures pprof artifacts from the parallel-core experiment
# (e14): the hot window loop, barrier merge and worker fan-out.
# Inspect with `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/udmabench -exp e14 -cpuprofile cpu.pprof -memprofile mem.pprof

faults:
	$(GO) run ./cmd/shrimpsim -scenario faults

# lossy runs the lossy-wire sweep (E13): seeded drop/corrupt/dup/
# reorder against the NIC's reliable delivery protocol, twice, with the
# outputs compared bit-exactly.
lossy:
	$(GO) run ./cmd/shrimpsim -scenario lossy

# serve runs the open-loop serving trial: seeded Poisson arrivals at a
# fixed offered rate, SLO readout, and a bit-exactness proof (same-seed
# rerun plus a 4-worker run must reproduce the fingerprint).
serve:
	$(GO) run ./cmd/shrimpsim -scenario serve

# mesh runs the routed-fabric incast scenario on the 64-node mesh:
# throttled links vs ample links, hot-link occupancy, and the
# bit-exactness proof (rerun plus a different worker count must
# reproduce the fingerprint). Try -topology torus via shrimpsim directly.
mesh:
	$(GO) run ./cmd/shrimpsim -scenario incast -nodes 64 -topology mesh

# churn runs the connection-churn trial: short-lived flows (one NIPT
# entry each) against a bounded on-board NIPT cache, with idle
# reliability state reclaimed at barriers, plus the same bit-exactness
# proof as serve.
churn:
	$(GO) run ./cmd/shrimpsim -scenario churn

# chaos runs the crash–restart trial: a seeded node crash schedule
# against the open-loop serving workload, with the availability readout
# (downtime, dip depth, time-to-recover) and the same bit-exactness
# proof as serve.
chaos:
	$(GO) run ./cmd/shrimpsim -scenario chaos

# fuzz gives each native fuzz target a short budget (override with
# FUZZTIME=5m for a longer soak). Each target must be fuzzed alone:
# `go test -fuzz` accepts a single match per package.
fuzz:
	$(GO) test ./internal/addr -run FuzzProxyAddr -fuzz FuzzProxyAddr -fuzztime $(FUZZTIME)
	$(GO) test ./internal/nic -run FuzzNIPTLookup -fuzz FuzzNIPTLookup -fuzztime $(FUZZTIME)

# simcheck runs the deterministic simulation checker's full seed sweep
# plus the broken-kernel detection tests.
simcheck:
	$(GO) test ./internal/simcheck -v

# cover writes a whole-repo coverage profile and prints the per-package
# function summary (CI uploads cover.out as an artifact).
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
