GO ?= go

.PHONY: all build vet test race check experiments faults

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the CI gate: everything must compile, vet clean, and pass
# the test suite under the race detector.
check: build vet race

experiments:
	$(GO) run ./cmd/udmabench -exp all

faults:
	$(GO) run ./cmd/shrimpsim -scenario faults
